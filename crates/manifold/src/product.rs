//! Mixed-curvature product manifolds.
//!
//! The paper's node representations live in a Cartesian product
//! `U^d_{κ1} × … × U^d_{κM}` of unified subspaces (Eq. 2).  A point of the
//! product is stored as one contiguous `f64` slice of length `Σ dims`,
//! split into per-subspace segments.  Distances can be the plain sum of
//! per-subspace geodesics (Eq. 3, the classical product-space definition) or
//! the attention-weighted combination the edge-level scorer uses (Eq. 14).

use serde::{Deserialize, Serialize};

use crate::ops;
use crate::space::{SpaceKind, UnifiedSpace};

/// Specification of one subspace inside a product manifold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubspaceSpec {
    /// Dimension of the subspace.
    pub dim: usize,
    /// Curvature of the subspace.
    pub kappa: f64,
}

impl SubspaceSpec {
    /// Convenience constructor.
    pub fn new(dim: usize, kappa: f64) -> Self {
        SubspaceSpec { dim, kappa }
    }
}

/// A product of constant-curvature subspaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductManifold {
    subspaces: Vec<SubspaceSpec>,
    offsets: Vec<usize>,
    total_dim: usize,
}

/// A point of a product manifold: a borrowed contiguous coordinate slice
/// together with the manifold describing its layout.
#[derive(Debug, Clone, Copy)]
pub struct ProductPoint<'a> {
    /// The manifold this point belongs to.
    pub manifold: &'a ProductManifold,
    /// Concatenated per-subspace coordinates (length `manifold.total_dim()`).
    pub coords: &'a [f64],
}

impl ProductManifold {
    /// Build a product manifold from subspace specifications.
    pub fn new(subspaces: Vec<SubspaceSpec>) -> Self {
        assert!(!subspaces.is_empty(), "product manifold needs ≥ 1 subspace");
        let mut offsets = Vec::with_capacity(subspaces.len());
        let mut total = 0;
        for s in &subspaces {
            assert!(s.dim > 0, "subspace dimension must be positive");
            offsets.push(total);
            total += s.dim;
        }
        ProductManifold {
            subspaces,
            offsets,
            total_dim: total,
        }
    }

    /// Product of `m` identical subspaces of dimension `dim` and curvature
    /// `kappa`.
    pub fn uniform(m: usize, dim: usize, kappa: f64) -> Self {
        ProductManifold::new(vec![SubspaceSpec::new(dim, kappa); m])
    }

    /// Build from [`UnifiedSpace`] descriptors.
    pub fn from_spaces(spaces: &[UnifiedSpace]) -> Self {
        ProductManifold::new(
            spaces
                .iter()
                .map(|s| SubspaceSpec::new(s.dim, s.kappa()))
                .collect(),
        )
    }

    /// Number of subspaces `M`.
    #[inline]
    pub fn num_subspaces(&self) -> usize {
        self.subspaces.len()
    }

    /// Total ambient dimension (sum of subspace dimensions).
    #[inline]
    pub fn total_dim(&self) -> usize {
        self.total_dim
    }

    /// Subspace specifications.
    #[inline]
    pub fn subspaces(&self) -> &[SubspaceSpec] {
        &self.subspaces
    }

    /// The coordinate range of subspace `m` within a concatenated point.
    #[inline]
    pub fn range(&self, m: usize) -> std::ops::Range<usize> {
        let start = self.offsets[m];
        start..start + self.subspaces[m].dim
    }

    /// Borrow the coordinates of subspace `m` from a concatenated point.
    #[inline]
    pub fn component<'a>(&self, point: &'a [f64], m: usize) -> &'a [f64] {
        &point[self.range(m)]
    }

    /// Replace the curvature of subspace `m` (used when curvatures are
    /// re-exported after training).
    pub fn set_kappa(&mut self, m: usize, kappa: f64) {
        self.subspaces[m].kappa = kappa;
    }

    /// Per-subspace geodesic distances between two concatenated points.
    pub fn component_distances(&self, x: &[f64], y: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.total_dim);
        debug_assert_eq!(y.len(), self.total_dim);
        self.subspaces
            .iter()
            .enumerate()
            .map(|(m, s)| ops::distance(self.component(x, m), self.component(y, m), s.kappa))
            .collect()
    }

    /// Product-space distance: the unweighted sum of per-subspace geodesics
    /// (Eq. 3 — what Gu et al.'s product space and the `- comb` ablation
    /// use).
    pub fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        self.component_distances(x, y).iter().sum()
    }

    /// Attention-weighted distance (Eq. 14): `Σ_m w_m · d_m(x, y)`.
    pub fn weighted_distance(&self, x: &[f64], y: &[f64], weights: &[f64]) -> f64 {
        debug_assert_eq!(weights.len(), self.num_subspaces());
        self.component_distances(x, y)
            .iter()
            .zip(weights)
            .map(|(d, w)| d * w)
            .sum()
    }

    /// Map a concatenated tangent vector through the per-subspace exponential
    /// maps at the origin.
    pub fn exp0(&self, v: &[f64]) -> Vec<f64> {
        debug_assert_eq!(v.len(), self.total_dim);
        let mut out = Vec::with_capacity(self.total_dim);
        for (m, s) in self.subspaces.iter().enumerate() {
            out.extend(ops::exp_map_origin(self.component(v, m), s.kappa));
        }
        out
    }

    /// Map a concatenated point through the per-subspace logarithmic maps at
    /// the origin.
    pub fn log0(&self, y: &[f64]) -> Vec<f64> {
        debug_assert_eq!(y.len(), self.total_dim);
        let mut out = Vec::with_capacity(self.total_dim);
        for (m, s) in self.subspaces.iter().enumerate() {
            out.extend(ops::log_map_origin(self.component(y, m), s.kappa));
        }
        out
    }

    /// Project each component back into its valid region.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.total_dim);
        let mut out = Vec::with_capacity(self.total_dim);
        for (m, s) in self.subspaces.iter().enumerate() {
            out.extend(ops::project_to_ball(self.component(x, m), s.kappa));
        }
        out
    }

    /// Distance of a point from the product-space origin (used by the
    /// curved-space regulariser, Eq. 16).
    pub fn distance_from_origin(&self, x: &[f64]) -> f64 {
        let zero = vec![0.0; self.total_dim];
        self.distance(&zero, x)
    }

    /// Summary of the space kinds the current curvatures correspond to
    /// (useful for reporting what an adaptive model converged to).
    pub fn kind_signature(&self) -> Vec<SpaceKind> {
        self.subspaces
            .iter()
            .map(|s| SpaceKind::classify(s.kappa))
            .collect()
    }
}

impl<'a> ProductPoint<'a> {
    /// Wrap a coordinate slice as a point of `manifold`.
    pub fn new(manifold: &'a ProductManifold, coords: &'a [f64]) -> Self {
        assert_eq!(coords.len(), manifold.total_dim());
        ProductPoint { manifold, coords }
    }

    /// Geodesic product distance to another point of the same manifold.
    pub fn distance_to(&self, other: &ProductPoint<'_>) -> f64 {
        self.manifold.distance(self.coords, other.coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifold() -> ProductManifold {
        ProductManifold::new(vec![SubspaceSpec::new(2, -1.0), SubspaceSpec::new(3, 1.0)])
    }

    #[test]
    fn layout_offsets_and_ranges() {
        let m = sample_manifold();
        assert_eq!(m.num_subspaces(), 2);
        assert_eq!(m.total_dim(), 5);
        assert_eq!(m.range(0), 0..2);
        assert_eq!(m.range(1), 2..5);
    }

    #[test]
    fn component_views_the_right_slice() {
        let m = sample_manifold();
        let p = [0.1, 0.2, 0.3, 0.4, 0.5];
        assert_eq!(m.component(&p, 0), &[0.1, 0.2]);
        assert_eq!(m.component(&p, 1), &[0.3, 0.4, 0.5]);
    }

    #[test]
    fn product_distance_is_sum_of_components() {
        let m = sample_manifold();
        let x = m.exp0(&[0.1, -0.2, 0.05, 0.1, -0.1]);
        let y = m.exp0(&[-0.05, 0.1, 0.2, -0.1, 0.02]);
        let comps = m.component_distances(&x, &y);
        assert_eq!(comps.len(), 2);
        assert!((m.distance(&x, &y) - comps.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn weighted_distance_with_uniform_weights_matches_mean_scaling() {
        let m = sample_manifold();
        let x = m.exp0(&[0.1, -0.2, 0.05, 0.1, -0.1]);
        let y = m.exp0(&[-0.05, 0.1, 0.2, -0.1, 0.02]);
        let w = [0.5, 0.5];
        let wd = m.weighted_distance(&x, &y, &w);
        assert!((wd - 0.5 * m.distance(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn exp0_log0_roundtrip_per_component() {
        let m = sample_manifold();
        let v = [0.11, -0.07, 0.2, 0.05, -0.12];
        let p = m.exp0(&v);
        let back = m.log0(&p);
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn uniform_builder_replicates_spec() {
        let m = ProductManifold::uniform(3, 4, -0.5);
        assert_eq!(m.num_subspaces(), 3);
        assert_eq!(m.total_dim(), 12);
        assert!(m.subspaces().iter().all(|s| s.kappa == -0.5 && s.dim == 4));
    }

    #[test]
    fn kind_signature_classifies_each_subspace() {
        let m = sample_manifold();
        assert_eq!(
            m.kind_signature(),
            vec![SpaceKind::Hyperbolic, SpaceKind::Spherical]
        );
    }

    #[test]
    fn distance_from_origin_is_zero_at_origin() {
        let m = sample_manifold();
        let zero = vec![0.0; m.total_dim()];
        assert!(m.distance_from_origin(&zero).abs() < 1e-12);
        let p = m.exp0(&[0.1, 0.1, 0.1, 0.1, 0.1]);
        assert!(m.distance_from_origin(&p) > 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_product_panics() {
        ProductManifold::new(vec![]);
    }

    #[test]
    fn product_point_distance_matches_manifold() {
        let m = sample_manifold();
        let x = m.exp0(&[0.1, -0.2, 0.05, 0.1, -0.1]);
        let y = m.exp0(&[-0.05, 0.1, 0.2, -0.1, 0.02]);
        let px = ProductPoint::new(&m, &x);
        let py = ProductPoint::new(&m, &y);
        assert!((px.distance_to(&py) - m.distance(&x, &y)).abs() < 1e-12);
    }
}
