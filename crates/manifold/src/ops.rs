//! Gyrovector-space point operations in the unified κ-stereographic model.
//!
//! These are the closed-form expressions of Table II in the paper: Möbius
//! addition, exponential/logarithmic maps, geodesic distance, κ-matrix
//! multiplication and κ-activations.  All functions operate on plain `&[f64]`
//! slices and return freshly allocated `Vec<f64>` (the hot retrieval paths
//! in `amcad-mnn` use the `*_into` / scalar variants to avoid allocation).

use crate::scalar::{atan_kappa, tan_kappa};
use crate::{dot, norm, norm_sq, BOUNDARY_EPS, MIN_NORM};

/// Conformal factor `λ^κ_x = 2 / (1 + κ‖x‖²)` at point `x`.
#[inline]
pub fn lambda_x(x: &[f64], kappa: f64) -> f64 {
    2.0 / (1.0 + kappa * norm_sq(x)).max(MIN_NORM)
}

/// Möbius addition `x ⊕_κ y` (Table II).
///
/// For `κ = 0` this reduces to ordinary vector addition; for `κ < 0` it is
/// the Poincaré-ball gyro-addition; for `κ > 0` the stereographic-sphere
/// counterpart.
pub fn mobius_add(x: &[f64], y: &[f64], kappa: f64) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len());
    let xy = dot(x, y);
    let x2 = norm_sq(x);
    let y2 = norm_sq(y);
    let num_x = 1.0 - 2.0 * kappa * xy - kappa * y2;
    let num_y = 1.0 + kappa * x2;
    let denom = 1.0 - 2.0 * kappa * xy + kappa * kappa * x2 * y2;
    let denom = if denom.abs() < MIN_NORM {
        MIN_NORM.copysign(denom)
    } else {
        denom
    };
    x.iter()
        .zip(y)
        .map(|(&xi, &yi)| (num_x * xi + num_y * yi) / denom)
        .collect()
}

/// Möbius negation: the additive inverse of `x`, i.e. `(-x) ⊕_κ x = 0`.
#[inline]
pub fn mobius_neg(x: &[f64]) -> Vec<f64> {
    x.iter().map(|v| -v).collect()
}

/// Project a point back into the valid region of the space.
///
/// For `κ < 0` the model lives on the open ball of radius `1/√(-κ)`; points
/// pushed outside by gradient updates are rescaled onto a slightly smaller
/// ball (the paper's out-of-boundary stabilisation, Section V-B).  For
/// `κ ≥ 0` the point is returned unchanged.
pub fn project_to_ball(x: &[f64], kappa: f64) -> Vec<f64> {
    if kappa >= 0.0 {
        return x.to_vec();
    }
    let max_norm = (1.0 - BOUNDARY_EPS) / (-kappa).sqrt();
    let n = norm(x);
    if n <= max_norm {
        x.to_vec()
    } else {
        let scale = max_norm / n;
        x.iter().map(|v| v * scale).collect()
    }
}

/// Exponential map at the origin: `exp^κ_0(v) = tan_κ(‖v‖) · v/‖v‖`.
///
/// For `κ > 0` the tangent norm is clamped just below the pole of `tan` so
/// that antipodal blow-ups cannot occur.
pub fn exp_map_origin(v: &[f64], kappa: f64) -> Vec<f64> {
    let n = norm(v);
    if n < MIN_NORM {
        return v.to_vec();
    }
    let mut arg = n;
    if kappa > crate::KAPPA_EPS {
        let limit = std::f64::consts::FRAC_PI_2 / kappa.sqrt() * (1.0 - BOUNDARY_EPS);
        if arg > limit {
            arg = limit;
        }
    }
    let scale = tan_kappa(arg, kappa) / n;
    let out: Vec<f64> = v.iter().map(|vi| vi * scale).collect();
    project_to_ball(&out, kappa)
}

/// Logarithmic map at the origin: `log^κ_0(y) = tan⁻¹_κ(‖y‖) · y/‖y‖`.
pub fn log_map_origin(y: &[f64], kappa: f64) -> Vec<f64> {
    let n = norm(y);
    if n < MIN_NORM {
        return y.to_vec();
    }
    let scale = atan_kappa(n, kappa) / n;
    y.iter().map(|yi| yi * scale).collect()
}

/// Exponential map at an arbitrary base point `x` (Table II):
/// `exp^κ_x(v) = x ⊕_κ ( tan_κ(λ^κ_x ‖v‖ / 2) · v/‖v‖ )`.
pub fn exp_map(x: &[f64], v: &[f64], kappa: f64) -> Vec<f64> {
    let n = norm(v);
    if n < MIN_NORM {
        return project_to_ball(x, kappa);
    }
    let lam = lambda_x(x, kappa);
    let scale = tan_kappa(lam * n / 2.0, kappa) / n;
    let step: Vec<f64> = v.iter().map(|vi| vi * scale).collect();
    project_to_ball(&mobius_add(x, &step, kappa), kappa)
}

/// Logarithmic map at an arbitrary base point `x` (Table II):
/// `log^κ_x(y) = (2/λ^κ_x) · tan⁻¹_κ(‖-x ⊕_κ y‖) · (-x ⊕_κ y)/‖-x ⊕_κ y‖`.
pub fn log_map(x: &[f64], y: &[f64], kappa: f64) -> Vec<f64> {
    let w = mobius_add(&mobius_neg(x), y, kappa);
    let n = norm(&w);
    if n < MIN_NORM {
        return vec![0.0; x.len()];
    }
    let lam = lambda_x(x, kappa);
    let scale = 2.0 / lam * atan_kappa(n, kappa) / n;
    w.iter().map(|wi| wi * scale).collect()
}

/// Geodesic distance `d_κ(x, y) = 2 · tan⁻¹_κ(‖-x ⊕_κ y‖)` (Table II).
///
/// For `κ = 0` this equals `2‖x - y‖` (the κ-stereographic convention).
pub fn distance(x: &[f64], y: &[f64], kappa: f64) -> f64 {
    let w = mobius_add(&mobius_neg(x), y, kappa);
    2.0 * atan_kappa(norm(&w), kappa)
}

/// Geodesic distance from the Gram quantities `x2 = ‖x‖²`, `y2 = ‖y‖²`
/// and `xy = ⟨x, y⟩` alone — the allocation-free form of [`distance`]
/// the SoA scan kernels in `amcad-mnn` evaluate per candidate.
///
/// Expanding `w = (-x) ⊕_κ y` (see [`mobius_add`]) coordinate-free with
/// `num_x = 1 + 2κ·xy − κ·y2` (the −x flips the sign of xy) and
/// `num_y = 1 + κ·x2` gives
/// `‖w‖² = (num_x²·x2 − 2·num_x·num_y·xy + num_y²·y2) / denom²` —
/// but that expansion cancels catastrophically near `x == y` (the terms
/// are O(1) while the result is O(‖x−y‖²)), inflating self-distances to
/// ~1e-8. Substituting `num_x = num_y − κ·dd` with `dd = ‖x−y‖²` factors
/// the numerator exactly:
///
/// ```text
/// dd    = x2 − 2·xy + y2            (‖x − y‖² in Gram form)
/// xd    = x2 − xy                   (⟨x, x − y⟩)
/// denom = 1 + 2κ·xy + κ²·x2·y2      (clamped away from 0 like mobius_add)
/// ‖w‖²  = dd · (num_y² − 2κ·num_y·xd + κ²·dd·x2) / denom²
/// ```
///
/// so the distance needs only three dot products over the operands —
/// `x2`/`y2` can be precomputed once per stored point — and identical
/// Gram inputs (`x2 == xy == y2` bitwise) make `dd` and the distance
/// *exactly* zero: `x2 − 2·xy` and the final `+ y2` both round exactly.
/// Squared norms are clamped at 0 before the square root (the bracket
/// can round a tiny-but-true-zero norm negative).
#[inline]
pub fn distance_gram(x2: f64, y2: f64, xy: f64, kappa: f64) -> f64 {
    let dd = x2 - 2.0 * xy + y2;
    let xd = x2 - xy;
    let num_y = 1.0 + kappa * x2;
    let denom = 1.0 + 2.0 * kappa * xy + kappa * kappa * x2 * y2;
    let denom = if denom.abs() < MIN_NORM {
        MIN_NORM.copysign(denom)
    } else {
        denom
    };
    let w_sq =
        dd * (num_y * num_y - 2.0 * kappa * num_y * xd + kappa * kappa * dd * x2) / (denom * denom);
    2.0 * atan_kappa(w_sq.max(0.0).sqrt(), kappa)
}

/// κ-matrix multiplication `M ⊗_κ x = exp^κ_0(M · log^κ_0(x))` (Table II).
///
/// `mat` is row-major with `rows × cols` entries, `cols == x.len()`.
pub fn kappa_matmul(mat: &[f64], rows: usize, cols: usize, x: &[f64], kappa: f64) -> Vec<f64> {
    debug_assert_eq!(mat.len(), rows * cols);
    debug_assert_eq!(cols, x.len());
    let t = log_map_origin(x, kappa);
    let mut out = vec![0.0; rows];
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot(&mat[r * cols..(r + 1) * cols], &t);
    }
    exp_map_origin(&out, kappa)
}

/// κ-activation `σ_{κ1→κ2}(x) = exp^{κ2}_0(σ(log^{κ1}_0(x)))` (Table II).
///
/// The Euclidean non-linearity `sigma` is applied pointwise in the tangent
/// space of the source curvature and the result re-mapped into the target
/// curvature — this is also how heterogeneous edge-space projection moves a
/// point between two different curvatures.
pub fn kappa_activation<F: Fn(f64) -> f64>(
    x: &[f64],
    kappa_from: f64,
    kappa_to: f64,
    sigma: F,
) -> Vec<f64> {
    let t = log_map_origin(x, kappa_from);
    let activated: Vec<f64> = t.iter().map(|&v| sigma(v)).collect();
    exp_map_origin(&activated, kappa_to)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn mobius_add_is_vector_addition_at_zero_curvature() {
        let x = [0.1, -0.2, 0.3];
        let y = [0.05, 0.4, -0.1];
        let sum = mobius_add(&x, &y, 0.0);
        assert_vec_close(&sum, &[0.15, 0.2, 0.2], 1e-12);
    }

    #[test]
    fn mobius_add_with_origin_is_identity() {
        let x = [0.2, -0.3];
        let zero = [0.0, 0.0];
        for &kappa in &[-1.0, -0.3, 0.0, 0.5, 1.0] {
            assert_vec_close(&mobius_add(&zero, &x, kappa), &x, 1e-12);
            assert_vec_close(&mobius_add(&x, &zero, kappa), &x, 1e-12);
        }
    }

    #[test]
    fn mobius_neg_is_left_inverse() {
        let x = [0.3, -0.1, 0.25];
        for &kappa in &[-1.0, -0.2, 0.0, 0.4, 1.0] {
            let z = mobius_add(&mobius_neg(&x), &x, kappa);
            assert!(norm(&z) < 1e-10, "kappa={kappa} residual {z:?}");
        }
    }

    #[test]
    fn exp_log_origin_roundtrip() {
        let v = [0.21, -0.13, 0.09];
        for &kappa in &[-2.0, -1.0, -0.1, 0.0, 0.1, 1.0, 2.0] {
            let p = exp_map_origin(&v, kappa);
            let back = log_map_origin(&p, kappa);
            assert_vec_close(&back, &v, 1e-8);
        }
    }

    #[test]
    fn exp_log_roundtrip_at_base_point() {
        let x = exp_map_origin(&[0.1, 0.05, -0.08], -1.0);
        let v = [0.12, -0.07, 0.2];
        for &kappa in &[-1.0, -0.3, 0.0, 0.6] {
            let y = exp_map(&x, &v, kappa);
            let back = log_map(&x, &y, kappa);
            assert_vec_close(&back, &v, 1e-6);
        }
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_diagonal() {
        let x = [0.2, -0.1];
        let y = [-0.15, 0.3];
        for &kappa in &[-1.5, -0.5, 0.0, 0.5, 1.5] {
            let dxy = distance(&x, &y, kappa);
            let dyx = distance(&y, &x, kappa);
            assert!((dxy - dyx).abs() < 1e-10);
            assert!(distance(&x, &x, kappa).abs() < 1e-10);
            assert!(dxy > 0.0);
        }
    }

    #[test]
    fn distance_gram_matches_the_vector_form_across_curvatures() {
        let xs = [
            vec![0.2, -0.1, 0.4],
            vec![0.0, 0.0, 0.0],
            vec![0.31, 0.17, -0.05],
        ];
        let ys = [
            vec![-0.15, 0.3, 0.1],
            vec![0.2, -0.1, 0.4],
            vec![0.0, 0.0, 0.0],
        ];
        for x in &xs {
            for y in &ys {
                for &kappa in &[-1.5, -1.0, -0.3, 0.0, 0.3, 1.0, 1.5] {
                    let reference = distance(x, y, kappa);
                    let gram = distance_gram(norm_sq(x), norm_sq(y), dot(x, y), kappa);
                    assert!(
                        (reference - gram).abs() < 1e-10,
                        "kappa={kappa} x={x:?} y={y:?}: {reference} vs {gram}"
                    );
                }
            }
        }
    }

    #[test]
    fn distance_gram_is_exactly_zero_on_identical_points() {
        // identical points present identical Gram quantities (x2 == y2 == xy);
        // the factored form makes dd — and so the distance — exactly zero,
        // which downstream self-distance asserts (nearest neighbour of a key
        // present in the candidates is itself, at < 1e-9) rely on
        for &kappa in &[-2.0, -1.0, 0.0, 1.0, 2.0] {
            for &t in &[0.0, 1e-12, 0.04, 0.21, 0.73] {
                assert_eq!(distance_gram(t, t, t, kappa), 0.0, "kappa={kappa} t={t}");
            }
        }
    }

    #[test]
    fn distance_at_zero_curvature_is_twice_euclidean() {
        let x = [0.2, -0.1, 0.4];
        let y = [-0.15, 0.3, 0.1];
        let eu: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!((distance(&x, &y, 0.0) - 2.0 * eu).abs() < 1e-10);
    }

    #[test]
    fn distance_matches_poincare_formula_for_unit_negative_curvature() {
        // For κ = -1 the κ-stereographic distance is the Poincaré distance
        // d(x,y) = 2 artanh(‖-x ⊕ y‖).
        let x = [0.3, 0.1];
        let y = [-0.2, 0.4];
        let w = mobius_add(&mobius_neg(&x), &y, -1.0);
        let expected = 2.0 * norm(&w).atanh();
        assert!((distance(&x, &y, -1.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn distance_from_origin_equals_log_norm_times_two_over_lambda() {
        // d_κ(0, y) = 2·tan⁻¹_κ(‖y‖) and ‖log_0(y)‖ = tan⁻¹_κ(‖y‖).
        let y = [0.25, -0.3];
        let zero = [0.0, 0.0];
        for &kappa in &[-1.0, 0.0, 1.0] {
            let d = distance(&zero, &y, kappa);
            let l = norm(&log_map_origin(&y, kappa));
            assert!((d - 2.0 * l).abs() < 1e-10);
        }
    }

    #[test]
    fn projection_keeps_points_inside_the_ball() {
        let kappa = -1.0;
        let far = [5.0, 5.0, 5.0];
        let p = project_to_ball(&far, kappa);
        assert!(norm(&p) < 1.0);
        // κ ≥ 0 is untouched
        assert_vec_close(&project_to_ball(&far, 0.5), &far, 0.0);
    }

    #[test]
    fn exp_map_positive_curvature_is_bounded() {
        // A huge tangent vector must not blow up through the tan pole.
        let v = [100.0, -50.0];
        let p = exp_map_origin(&v, 1.0);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn kappa_matmul_reduces_to_matmul_at_zero_curvature() {
        let mat = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let x = [0.1, 0.2, 0.3];
        let out = kappa_matmul(&mat, 2, 3, &x, 0.0);
        assert_vec_close(&out, &[1.4, 3.2], 1e-9);
    }

    #[test]
    fn kappa_activation_moves_point_between_curvatures() {
        let x = exp_map_origin(&[0.2, -0.1], -1.0);
        let y = kappa_activation(&x, -1.0, 1.0, |v| v); // identity activation
                                                        // identity in tangent space: log_0^{κ2}(y) == log_0^{κ1}(x)
        let tx = log_map_origin(&x, -1.0);
        let ty = log_map_origin(&y, 1.0);
        assert_vec_close(&tx, &ty, 1e-9);
    }

    #[test]
    fn lambda_at_origin_is_two() {
        let zero = [0.0; 4];
        for &kappa in &[-1.0, 0.0, 1.0] {
            assert!((lambda_x(&zero, kappa) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn triangle_inequality_holds_in_hyperbolic_space() {
        let a = exp_map_origin(&[0.1, 0.2], -1.0);
        let b = exp_map_origin(&[-0.3, 0.05], -1.0);
        let c = exp_map_origin(&[0.2, -0.25], -1.0);
        let ab = distance(&a, &b, -1.0);
        let bc = distance(&b, &c, -1.0);
        let ac = distance(&a, &c, -1.0);
        assert!(ac <= ab + bc + 1e-9);
    }
}
