//! Descriptors for constant-curvature subspaces.
//!
//! The paper distinguishes three *fixed* space kinds (Table I) plus the
//! *unified* space whose curvature is a trainable parameter and can converge
//! to any of the three.  [`SpaceKind`] captures which restriction a model
//! configuration imposes; [`Curvature`] carries the actual value and whether
//! training may change it.

use serde::{Deserialize, Serialize};

use crate::ops;

/// Which family of constant-curvature space a subspace is restricted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpaceKind {
    /// Negative curvature (Poincaré-ball-like); suited to hierarchical data.
    Hyperbolic,
    /// Zero curvature; the classical flat embedding space.
    Euclidean,
    /// Positive curvature (stereographic sphere); suited to cyclic data.
    Spherical,
    /// Unified κ-stereographic space: curvature is learned and may take any
    /// sign — the paper's "adaptive" choice.
    Unified,
}

impl SpaceKind {
    /// Default initial curvature used when a subspace of this kind is
    /// created without an explicit value.
    pub fn default_curvature(self) -> f64 {
        match self {
            SpaceKind::Hyperbolic => -1.0,
            SpaceKind::Euclidean => 0.0,
            SpaceKind::Spherical => 1.0,
            // Small negative initialisation: empirically the paper's graphs
            // are hierarchy-dominated, and a near-flat start keeps early
            // training stable.
            SpaceKind::Unified => -0.1,
        }
    }

    /// Whether the curvature of this kind of space may be updated by
    /// training.
    pub fn trainable(self) -> bool {
        matches!(self, SpaceKind::Unified)
    }

    /// Whether a curvature value is admissible for this kind.
    pub fn admits(self, kappa: f64) -> bool {
        match self {
            SpaceKind::Hyperbolic => kappa < 0.0,
            SpaceKind::Euclidean => kappa == 0.0,
            SpaceKind::Spherical => kappa > 0.0,
            SpaceKind::Unified => true,
        }
    }

    /// Clamp a (possibly trained) curvature back into the admissible range
    /// of this kind.  Unified spaces are returned unchanged.
    pub fn clamp(self, kappa: f64) -> f64 {
        match self {
            SpaceKind::Hyperbolic => kappa.min(-1e-4),
            SpaceKind::Euclidean => 0.0,
            SpaceKind::Spherical => kappa.max(1e-4),
            SpaceKind::Unified => kappa,
        }
    }

    /// Classify a concrete curvature value into the fixed kind it falls in.
    pub fn classify(kappa: f64) -> SpaceKind {
        if kappa < -crate::KAPPA_EPS {
            SpaceKind::Hyperbolic
        } else if kappa > crate::KAPPA_EPS {
            SpaceKind::Spherical
        } else {
            SpaceKind::Euclidean
        }
    }
}

/// A curvature value together with its trainability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Curvature {
    /// Current sectional curvature κ.
    pub value: f64,
    /// Whether gradient updates are applied to this curvature.
    pub trainable: bool,
}

impl Curvature {
    /// A fixed, non-trainable curvature.
    pub fn fixed(value: f64) -> Self {
        Curvature {
            value,
            trainable: false,
        }
    }

    /// A trainable curvature initialised at `value`.
    pub fn trainable(value: f64) -> Self {
        Curvature {
            value,
            trainable: true,
        }
    }
}

/// A single constant-curvature subspace `U^d_κ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnifiedSpace {
    /// Ambient dimension of the subspace.
    pub dim: usize,
    /// Space-kind restriction (used to clamp trained curvatures).
    pub kind: SpaceKind,
    /// Current curvature.
    pub curvature: Curvature,
}

impl UnifiedSpace {
    /// Create a subspace of the given kind with its default curvature.
    pub fn new(dim: usize, kind: SpaceKind) -> Self {
        UnifiedSpace {
            dim,
            kind,
            curvature: Curvature {
                value: kind.default_curvature(),
                trainable: kind.trainable(),
            },
        }
    }

    /// Create a subspace with an explicit fixed curvature.
    pub fn with_curvature(dim: usize, kappa: f64) -> Self {
        UnifiedSpace {
            dim,
            kind: SpaceKind::classify(kappa),
            curvature: Curvature::fixed(kappa),
        }
    }

    /// Current curvature value.
    #[inline]
    pub fn kappa(&self) -> f64 {
        self.curvature.value
    }

    /// Geodesic distance between two points of this subspace.
    pub fn distance(&self, x: &[f64], y: &[f64]) -> f64 {
        ops::distance(x, y, self.kappa())
    }

    /// Exponential map at the origin of this subspace.
    pub fn exp0(&self, v: &[f64]) -> Vec<f64> {
        ops::exp_map_origin(v, self.kappa())
    }

    /// Logarithmic map at the origin of this subspace.
    pub fn log0(&self, y: &[f64]) -> Vec<f64> {
        ops::log_map_origin(y, self.kappa())
    }

    /// Project a point back into the valid region of this subspace.
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        ops::project_to_ball(x, self.kappa())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_curvatures_match_kinds() {
        assert!(SpaceKind::Hyperbolic.default_curvature() < 0.0);
        assert_eq!(SpaceKind::Euclidean.default_curvature(), 0.0);
        assert!(SpaceKind::Spherical.default_curvature() > 0.0);
        assert!(SpaceKind::Unified.trainable());
        assert!(!SpaceKind::Hyperbolic.trainable());
    }

    #[test]
    fn clamp_respects_kind() {
        assert!(SpaceKind::Hyperbolic.clamp(0.7) < 0.0);
        assert_eq!(SpaceKind::Euclidean.clamp(0.7), 0.0);
        assert!(SpaceKind::Spherical.clamp(-0.7) > 0.0);
        assert_eq!(SpaceKind::Unified.clamp(0.7), 0.7);
    }

    #[test]
    fn classify_by_sign() {
        assert_eq!(SpaceKind::classify(-1.0), SpaceKind::Hyperbolic);
        assert_eq!(SpaceKind::classify(0.0), SpaceKind::Euclidean);
        assert_eq!(SpaceKind::classify(2.0), SpaceKind::Spherical);
    }

    #[test]
    fn admits_checks_sign() {
        assert!(SpaceKind::Hyperbolic.admits(-0.5));
        assert!(!SpaceKind::Hyperbolic.admits(0.5));
        assert!(SpaceKind::Unified.admits(0.5));
        assert!(SpaceKind::Unified.admits(-0.5));
    }

    #[test]
    fn unified_space_roundtrip() {
        let s = UnifiedSpace::new(3, SpaceKind::Hyperbolic);
        let v = [0.1, 0.2, -0.05];
        let p = s.exp0(&v);
        let back = s.log0(&p);
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(s.distance(&p, &p).abs() < 1e-10);
    }

    #[test]
    fn with_curvature_classifies_kind() {
        let s = UnifiedSpace::with_curvature(4, 0.8);
        assert_eq!(s.kind, SpaceKind::Spherical);
        assert!(!s.curvature.trainable);
    }
}
