//! Property-based tests for the κ-stereographic operations.
//!
//! These check metric-space invariants (symmetry, identity, triangle
//! inequality), inverse relations (exp/log, tan/atan, Möbius negation) and
//! the consistency of the unified model across the three curvature regimes.

use amcad_manifold::{
    atan_kappa, distance, exp_map_origin, log_map_origin, mobius_add, mobius_neg, norm,
    project_to_ball, tan_kappa, ProductManifold, SubspaceSpec,
};
use proptest::prelude::*;

/// Curvatures spanning hyperbolic, (near-)flat and spherical regimes.
fn kappa_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-2.0f64..-0.01),
        Just(0.0),
        (-1e-9f64..1e-9),
        (0.01f64..2.0),
    ]
}

/// Small tangent vectors (kept well away from the spherical tan pole and the
/// hyperbolic boundary so round-trips are numerically exact).
fn tangent_strategy(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-0.4f64..0.4, dim)
}

proptest! {
    #[test]
    fn tan_atan_roundtrip(x in -0.8f64..0.8, kappa in kappa_strategy()) {
        let y = tan_kappa(x, kappa);
        let back = atan_kappa(y, kappa);
        prop_assert!((back - x).abs() < 1e-6, "x={x} kappa={kappa} back={back}");
    }

    #[test]
    fn tan_kappa_is_odd(x in -0.8f64..0.8, kappa in kappa_strategy()) {
        let pos = tan_kappa(x, kappa);
        let neg = tan_kappa(-x, kappa);
        prop_assert!((pos + neg).abs() < 1e-10);
    }

    #[test]
    fn tan_kappa_is_monotone(a in -0.7f64..0.7, b in -0.7f64..0.7, kappa in kappa_strategy()) {
        prop_assume!((a - b).abs() > 1e-9);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(tan_kappa(lo, kappa) < tan_kappa(hi, kappa));
    }

    #[test]
    fn exp_log_origin_roundtrip(v in tangent_strategy(4), kappa in kappa_strategy()) {
        let p = exp_map_origin(&v, kappa);
        let back = log_map_origin(&p, kappa);
        for (a, b) in v.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6, "v={v:?} kappa={kappa} back={back:?}");
        }
    }

    #[test]
    fn distance_symmetry_and_identity(
        u in tangent_strategy(3),
        v in tangent_strategy(3),
        kappa in kappa_strategy(),
    ) {
        let x = exp_map_origin(&u, kappa);
        let y = exp_map_origin(&v, kappa);
        let dxy = distance(&x, &y, kappa);
        let dyx = distance(&y, &x, kappa);
        prop_assert!((dxy - dyx).abs() < 1e-8);
        prop_assert!(distance(&x, &x, kappa).abs() < 1e-8);
        prop_assert!(dxy >= -1e-12);
    }

    #[test]
    fn triangle_inequality(
        u in tangent_strategy(3),
        v in tangent_strategy(3),
        w in tangent_strategy(3),
        kappa in kappa_strategy(),
    ) {
        let a = exp_map_origin(&u, kappa);
        let b = exp_map_origin(&v, kappa);
        let c = exp_map_origin(&w, kappa);
        let ab = distance(&a, &b, kappa);
        let bc = distance(&b, &c, kappa);
        let ac = distance(&a, &c, kappa);
        prop_assert!(ac <= ab + bc + 1e-7, "ac={ac} ab={ab} bc={bc} kappa={kappa}");
    }

    #[test]
    fn mobius_left_inverse(u in tangent_strategy(3), kappa in kappa_strategy()) {
        let x = exp_map_origin(&u, kappa);
        let z = mobius_add(&mobius_neg(&x), &x, kappa);
        prop_assert!(norm(&z) < 1e-7, "residual {z:?} for kappa={kappa}");
    }

    #[test]
    fn mobius_identity_element(u in tangent_strategy(3), kappa in kappa_strategy()) {
        let x = exp_map_origin(&u, kappa);
        let zero = vec![0.0; x.len()];
        let left = mobius_add(&zero, &x, kappa);
        let right = mobius_add(&x, &zero, kappa);
        for ((l, r), xi) in left.iter().zip(&right).zip(&x) {
            prop_assert!((l - xi).abs() < 1e-10);
            prop_assert!((r - xi).abs() < 1e-10);
        }
    }

    #[test]
    fn projection_is_idempotent(v in prop::collection::vec(-5.0f64..5.0, 3), kappa in kappa_strategy()) {
        let once = project_to_ball(&v, kappa);
        let twice = project_to_ball(&once, kappa);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-12);
        }
        if kappa < 0.0 {
            prop_assert!(norm(&once) <= 1.0 / (-kappa).sqrt());
        }
    }

    #[test]
    fn product_distance_dominates_each_component(
        u in tangent_strategy(6),
        v in tangent_strategy(6),
        k1 in kappa_strategy(),
        k2 in kappa_strategy(),
    ) {
        let m = ProductManifold::new(vec![SubspaceSpec::new(3, k1), SubspaceSpec::new(3, k2)]);
        let x = m.exp0(&u);
        let y = m.exp0(&v);
        let comps = m.component_distances(&x, &y);
        let total = m.distance(&x, &y);
        for c in comps {
            prop_assert!(total + 1e-9 >= c);
        }
    }

    #[test]
    fn weighted_distance_is_between_zero_and_sum(
        u in tangent_strategy(4),
        v in tangent_strategy(4),
        w0 in 0.0f64..1.0,
    ) {
        let m = ProductManifold::new(vec![SubspaceSpec::new(2, -1.0), SubspaceSpec::new(2, 1.0)]);
        let x = m.exp0(&u);
        let y = m.exp0(&v);
        let weights = [w0, 1.0 - w0];
        let wd = m.weighted_distance(&x, &y, &weights);
        prop_assert!(wd >= -1e-12);
        prop_assert!(wd <= m.distance(&x, &y) + 1e-9);
    }
}
