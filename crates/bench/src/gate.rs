//! The bench regression gate: diff a fresh `BENCH_table9.json` against a
//! committed baseline and fail CI when quality regresses.
//!
//! The gate reads both artefacts through [`crate::json::Json::parse`] and
//! applies two kinds of checks, calibrated to what each number means:
//!
//! * **Recall and memory footprint are pinned tightly.** At a fixed scale
//!   and seed the whole pipeline — world generation, training, index
//!   build — is deterministic, so the ad-side recall of every frontier
//!   configuration and the quantised bytes/ad are properties of the
//!   *code*, not the machine. A small absolute tolerance absorbs
//!   intentional re-baselining noise; anything beyond it is a real
//!   quality regression.
//! * **Latency is gated loosely, by ratio.** CI runners and laptops
//!   differ by integer factors, so tail latency only fails the gate when
//!   a frontier configuration's p99 blows past `latency_ratio_max` times
//!   the baseline (with a floor so microsecond baselines don't turn
//!   scheduler jitter into failures). The gate catches "the new scan is
//!   10x slower", not "this runner is busy".
//!
//! [`compare`] returns the violations as strings (empty = pass) so the
//! `bench_gate` binary stays a thin argv/exit-code wrapper and the
//! policy itself is unit-tested.

use crate::json::Json;

/// Tolerances for [`compare`].
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Absolute recall drop allowed per frontier row.
    pub recall_abs_tol: f64,
    /// Fresh p99 may be at most this multiple of the baseline p99.
    pub latency_ratio_max: f64,
    /// Baselines below this many milliseconds are clamped up before the
    /// ratio check, so sub-millisecond noise cannot fail the gate.
    pub latency_floor_ms: f64,
    /// Minimum full-precision / quantised bytes-per-ad ratio.
    pub min_footprint_ratio: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            recall_abs_tol: 0.05,
            latency_ratio_max: 10.0,
            latency_floor_ms: 0.5,
            min_footprint_ratio: 4.0,
        }
    }
}

fn num(row: &Json, field: &str) -> Option<f64> {
    row.get(field).and_then(Json::as_f64)
}

fn text<'a>(row: &'a Json, field: &str) -> &'a str {
    row.get(field).and_then(Json::as_str).unwrap_or("?")
}

/// Compare a fresh table9 artefact against the committed baseline.
/// Returns one message per violation; an empty vector means the gate
/// passes. Structural problems (missing sections, mismatched scale) are
/// violations too — a gate that silently skips checks is no gate.
pub fn compare(baseline: &Json, fresh: &Json, cfg: &GateConfig) -> Vec<String> {
    let mut violations = Vec::new();

    let base_scale = text(baseline, "scale");
    let fresh_scale = text(fresh, "scale");
    if base_scale != fresh_scale {
        violations.push(format!(
            "scale mismatch: baseline ran at '{base_scale}', fresh at '{fresh_scale}' — \
             the comparison is meaningless across presets"
        ));
        return violations;
    }

    // -- frontier: recall pinned, latency loosely bounded -----------------
    match (
        baseline.get("frontier").and_then(Json::as_arr),
        fresh.get("frontier").and_then(Json::as_arr),
    ) {
        (Some(base_rows), Some(fresh_rows)) => {
            for base_row in base_rows {
                let backend = text(base_row, "backend");
                let knob = text(base_row, "knob");
                let Some(fresh_row) = fresh_rows
                    .iter()
                    .find(|r| text(r, "backend") == backend && text(r, "knob") == knob)
                else {
                    violations.push(format!(
                        "frontier row {backend}/{knob} present in the baseline but missing \
                         from the fresh run"
                    ));
                    continue;
                };
                match (
                    num(base_row, "recall_at_20"),
                    num(fresh_row, "recall_at_20"),
                ) {
                    (Some(base_recall), Some(fresh_recall)) => {
                        if fresh_recall < base_recall - cfg.recall_abs_tol {
                            violations.push(format!(
                                "frontier {backend}/{knob}: recall@20 regressed \
                                 {base_recall:.3} -> {fresh_recall:.3} \
                                 (tolerance {:.3})",
                                cfg.recall_abs_tol
                            ));
                        }
                    }
                    _ => violations.push(format!(
                        "frontier {backend}/{knob}: recall_at_20 missing or non-numeric"
                    )),
                }
                match (num(base_row, "p99_ms"), num(fresh_row, "p99_ms")) {
                    (Some(base_p99), Some(fresh_p99)) => {
                        let bound = base_p99.max(cfg.latency_floor_ms) * cfg.latency_ratio_max;
                        if fresh_p99 > bound {
                            violations.push(format!(
                                "frontier {backend}/{knob}: p99 {fresh_p99:.3}ms exceeds \
                                 {:.0}x the baseline {base_p99:.3}ms (bound {bound:.3}ms)",
                                cfg.latency_ratio_max
                            ));
                        }
                    }
                    _ => violations.push(format!(
                        "frontier {backend}/{knob}: p99_ms missing or non-numeric"
                    )),
                }
            }
        }
        _ => violations.push("'frontier' section missing from an artefact".to_string()),
    }

    // -- memory footprint: a structural property, pinned exactly ----------
    match (
        baseline.get("memory_footprint"),
        fresh.get("memory_footprint"),
    ) {
        (Some(base_fp), Some(fresh_fp)) => {
            match (
                num(base_fp, "quantised_bytes_per_ad"),
                num(fresh_fp, "quantised_bytes_per_ad"),
            ) {
                (Some(base_bpa), Some(fresh_bpa)) => {
                    if fresh_bpa > base_bpa {
                        violations.push(format!(
                            "memory footprint grew: {base_bpa:.0} -> {fresh_bpa:.0} \
                             quantised bytes/ad"
                        ));
                    }
                }
                _ => violations.push("memory_footprint.quantised_bytes_per_ad missing".to_string()),
            }
            match num(fresh_fp, "ratio") {
                Some(ratio) => {
                    if ratio < cfg.min_footprint_ratio {
                        violations.push(format!(
                            "memory footprint ratio {ratio:.2}x is below the pinned \
                             {:.0}x minimum",
                            cfg.min_footprint_ratio
                        ));
                    }
                }
                None => violations.push("memory_footprint.ratio missing".to_string()),
            }
        }
        _ => violations.push("'memory_footprint' section missing from an artefact".to_string()),
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artefact(recall: f64, p99: f64, bpa: f64, ratio: f64) -> Json {
        Json::obj(vec![
            ("bench", Json::from("table9_scalability")),
            ("scale", Json::from("tiny")),
            (
                "frontier",
                Json::Arr(vec![
                    Json::obj(vec![
                        ("backend", Json::from("exact")),
                        ("knob", Json::from("-")),
                        ("recall_at_20", Json::from(1.0)),
                        ("p99_ms", Json::from(p99)),
                    ]),
                    Json::obj(vec![
                        ("backend", Json::from("quant")),
                        ("knob", Json::from("rerank=48")),
                        ("recall_at_20", Json::from(recall)),
                        ("p99_ms", Json::from(p99)),
                    ]),
                ]),
            ),
            (
                "memory_footprint",
                Json::obj(vec![
                    ("quantised_bytes_per_ad", Json::from(bpa)),
                    ("full_precision_bytes_per_ad", Json::from(bpa * ratio)),
                    ("ratio", Json::from(ratio)),
                ]),
            ),
        ])
    }

    #[test]
    fn identical_runs_pass() {
        let base = artefact(0.9, 2.0, 10.0, 6.4);
        assert_eq!(
            compare(&base, &base.clone(), &GateConfig::default()),
            Vec::<String>::new()
        );
    }

    #[test]
    fn small_recall_noise_and_slower_machines_pass() {
        let base = artefact(0.9, 2.0, 10.0, 6.4);
        let fresh = artefact(0.87, 15.0, 10.0, 6.4); // -0.03 recall, 7.5x p99
        assert!(compare(&base, &fresh, &GateConfig::default()).is_empty());
    }

    #[test]
    fn recall_regressions_fail() {
        let base = artefact(0.9, 2.0, 10.0, 6.4);
        let fresh = artefact(0.7, 2.0, 10.0, 6.4);
        let violations = compare(&base, &fresh, &GateConfig::default());
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(
            violations[0].contains("recall@20 regressed"),
            "{violations:?}"
        );
    }

    #[test]
    fn latency_blowups_fail_but_microsecond_jitter_does_not() {
        let base = artefact(0.9, 2.0, 10.0, 6.4);
        let fresh = artefact(0.9, 25.0, 10.0, 6.4); // 12.5x the baseline
        let violations = compare(&base, &fresh, &GateConfig::default());
        assert!(
            violations.iter().all(|v| v.contains("p99")) && violations.len() == 2,
            "both rows blow the latency bound: {violations:?}"
        );
        // a 0.001ms baseline is clamped to the floor before the ratio, so
        // 1ms of scheduler noise passes
        let tiny_base = artefact(0.9, 0.001, 10.0, 6.4);
        let noisy = artefact(0.9, 1.0, 10.0, 6.4);
        assert!(compare(&tiny_base, &noisy, &GateConfig::default()).is_empty());
    }

    #[test]
    fn footprint_growth_and_broken_ratio_fail() {
        let base = artefact(0.9, 2.0, 10.0, 6.4);
        let grown = artefact(0.9, 2.0, 16.0, 6.4);
        assert!(compare(&base, &grown, &GateConfig::default())
            .iter()
            .any(|v| v.contains("memory footprint grew")));
        let thin = artefact(0.9, 2.0, 10.0, 3.0);
        assert!(compare(&base, &thin, &GateConfig::default())
            .iter()
            .any(|v| v.contains("below the pinned")));
    }

    #[test]
    fn missing_rows_sections_and_scale_mismatch_fail() {
        let base = artefact(0.9, 2.0, 10.0, 6.4);
        // a fresh run that silently dropped the quant frontier row
        let mut fresh = artefact(0.9, 2.0, 10.0, 6.4);
        if let Json::Obj(pairs) = &mut fresh {
            if let Some(Json::Arr(rows)) = pairs
                .iter_mut()
                .find(|(k, _)| k == "frontier")
                .map(|(_, v)| v)
            {
                rows.pop();
            }
        }
        assert!(compare(&base, &fresh, &GateConfig::default())
            .iter()
            .any(|v| v.contains("missing from the fresh run")));

        let empty = Json::obj(vec![("scale", Json::from("tiny"))]);
        let violations = compare(&base, &empty, &GateConfig::default());
        assert!(violations
            .iter()
            .any(|v| v.contains("'frontier' section missing")));
        assert!(violations
            .iter()
            .any(|v| v.contains("'memory_footprint' section missing")));

        let day = Json::obj(vec![("scale", Json::from("day"))]);
        let violations = compare(&base, &day, &GateConfig::default());
        assert_eq!(
            violations.len(),
            1,
            "scale mismatch short-circuits: {violations:?}"
        );
        assert!(violations[0].contains("scale mismatch"));
    }
}
