//! # amcad-bench
//!
//! Benchmark harness for the AMCAD reproduction: Criterion micro-benchmarks
//! (manifold ops, training step, MNN index build, retrieval latency) and one
//! experiment binary per table / figure of the paper's evaluation section.
//!
//! Every experiment binary accepts the `AMCAD_SCALE` environment variable:
//!
//! * `tiny`  — seconds per model; the default so the whole suite can be
//!   regenerated quickly (this is the scale recorded in EXPERIMENTS.md),
//! * `small` — a few minutes per model, larger graphs,
//! * `day`   — the "1 day" window preset (closest to the paper's setup this
//!   repository can reach on one machine).
//!
//! Absolute numbers differ from the paper (the substrate is a synthetic
//! world, not Taobao), but the *shape* of each table/figure — which method
//! wins, by roughly what factor, where the trends bend — is what the
//! binaries reproduce.

use std::time::Instant;

pub mod gate;
pub mod json;

use amcad_core::{evaluate_offline, EvalConfig, OfflineMetrics};
use amcad_datagen::{Dataset, WorldConfig};
use amcad_model::{
    AmcadConfig, AmcadModel, ModelExport, PairScorer, SgnsConfig, SgnsModel, Trainer,
    TrainerConfig, WalkStrategy,
};

/// Experiment scale selected through the `AMCAD_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per model (default).
    Tiny,
    /// Minutes per model.
    Small,
    /// The "1 day" preset.
    Day,
}

impl Scale {
    /// Read the scale from the environment (`AMCAD_SCALE`), defaulting to
    /// [`Scale::Tiny`].
    pub fn from_env() -> Scale {
        match std::env::var("AMCAD_SCALE").unwrap_or_default().as_str() {
            "small" => Scale::Small,
            "day" | "full" => Scale::Day,
            _ => Scale::Tiny,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Day => "day",
        }
    }

    /// World configuration for this scale.
    pub fn world(self, seed: u64) -> WorldConfig {
        match self {
            Scale::Tiny => {
                let mut w = WorldConfig::tiny(seed);
                // slightly richer than the unit-test world so rankings have
                // room to differ between methods
                w.num_categories = 6;
                w.queries_per_category = 16;
                w.items_per_category = 24;
                w.ads_per_category = 8;
                w.train_sessions = 2_500;
                w.eval_sessions = 900;
                w
            }
            Scale::Small => {
                let mut w = WorldConfig::one_day(seed);
                w.num_categories = 8;
                w.queries_per_category = 24;
                w.items_per_category = 48;
                w.ads_per_category = 24;
                w.train_sessions = 6_000;
                w.eval_sessions = 2_000;
                w
            }
            Scale::Day => WorldConfig::one_day(seed),
        }
    }

    /// Trainer configuration for this scale.
    pub fn trainer(self, seed: u64) -> TrainerConfig {
        match self {
            Scale::Tiny => TrainerConfig {
                batch_size: 16,
                steps: 120,
                seed,
                lru_max_age: 0,
            },
            Scale::Small => TrainerConfig {
                batch_size: 32,
                steps: 300,
                seed,
                lru_max_age: 0,
            },
            Scale::Day => TrainerConfig {
                batch_size: 64,
                steps: 600,
                seed,
                lru_max_age: 0,
            },
        }
    }

    /// Per-feature embedding dimension for this scale.
    pub fn feature_dim(self) -> usize {
        match self {
            Scale::Tiny => 6,
            Scale::Small => 8,
            Scale::Day => 12,
        }
    }

    /// Offline-evaluation configuration for this scale.
    pub fn eval(self, seed: u64) -> EvalConfig {
        match self {
            Scale::Tiny => EvalConfig {
                max_queries: 60,
                auc_negatives: 4,
                seed,
            },
            Scale::Small => EvalConfig {
                max_queries: 100,
                auc_negatives: 4,
                seed,
            },
            Scale::Day => EvalConfig::default(),
        }
    }
}

/// The result of training and evaluating one model configuration.
pub struct EvaluatedModel {
    /// Display name (model preset name or baseline name).
    pub name: String,
    /// Offline metrics.
    pub metrics: OfflineMetrics,
    /// Training wall-clock time in seconds.
    pub train_seconds: f64,
    /// The export (only for AMCAD-family models; baselines return `None`).
    pub export: Option<ModelExport>,
}

/// Train an AMCAD-family configuration and evaluate it offline.
pub fn train_and_eval_amcad(
    config: AmcadConfig,
    dataset: &Dataset,
    trainer_cfg: TrainerConfig,
    eval_cfg: &EvalConfig,
) -> EvaluatedModel {
    let name = config.name.clone();
    let mut model = AmcadModel::new(config, &dataset.graph);
    let trainer = Trainer::new(trainer_cfg);
    let start = Instant::now();
    let _report = trainer.run(&mut model, &dataset.graph);
    let train_seconds = start.elapsed().as_secs_f64();
    let export = model.export(&dataset.graph, trainer_cfg.seed);
    let metrics = evaluate_offline(&export, dataset, eval_cfg);
    EvaluatedModel {
        name,
        metrics,
        train_seconds,
        export: Some(export),
    }
}

/// Train a walk-based baseline and evaluate it offline.
pub fn train_and_eval_sgns(
    strategy: WalkStrategy,
    dataset: &Dataset,
    sgns_cfg: &SgnsConfig,
    eval_cfg: &EvalConfig,
) -> EvaluatedModel {
    let start = Instant::now();
    let model = SgnsModel::train(&dataset.graph, &strategy, sgns_cfg);
    let train_seconds = start.elapsed().as_secs_f64();
    let metrics = evaluate_offline(&model, dataset, eval_cfg);
    EvaluatedModel {
        name: model.scorer_name().to_string(),
        metrics,
        train_seconds,
        export: None,
    }
}

/// Format one Table VI-style row of metrics (without the model-name cell).
pub fn metric_row(m: &OfflineMetrics, train_seconds: f64) -> Vec<String> {
    let f = |v: f64| format!("{v:.3}");
    vec![
        format!("{:.3}", m.next_auc),
        format!("{train_seconds:.1}"),
        f(m.q2i.hitrate[0]),
        f(m.q2i.hitrate[1]),
        f(m.q2i.hitrate[2]),
        f(m.q2i.ndcg[0]),
        f(m.q2i.ndcg[1]),
        f(m.q2i.ndcg[2]),
        f(m.q2a.hitrate[0]),
        f(m.q2a.hitrate[1]),
        f(m.q2a.hitrate[2]),
        f(m.q2a.ndcg[0]),
        f(m.q2a.ndcg[1]),
        f(m.q2a.ndcg[2]),
    ]
}

/// Header matching [`metric_row`] (with the leading model-name column).
pub fn metric_header() -> Vec<String> {
    vec![
        "Model".into(),
        "NextAUC".into(),
        "Train(s)".into(),
        "Q2I HR@10".into(),
        "HR@100".into(),
        "HR@300".into(),
        "nDCG@10".into(),
        "nDCG@100".into(),
        "nDCG@300".into(),
        "Q2A HR@10".into(),
        "HR@100".into(),
        "HR@300".into(),
        "nDCG@10".into(),
        "nDCG@100".into(),
        "nDCG@300".into(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_presets_are_ordered() {
        assert_eq!(Scale::Tiny.label(), "tiny");
        assert!(Scale::Small.world(1).train_sessions > Scale::Tiny.world(1).train_sessions);
        assert!(Scale::Day.trainer(1).steps > Scale::Tiny.trainer(1).steps);
        assert!(Scale::Day.feature_dim() >= Scale::Tiny.feature_dim());
    }

    #[test]
    fn metric_row_and_header_have_consistent_width() {
        let row = metric_row(&OfflineMetrics::default(), 1.0);
        // the header's first column is the model name, which metric_row does
        // not include
        assert_eq!(row.len() + 1, metric_header().len());
    }
}
