//! Table X — simulated online A/B test: AMCAD versus the Euclidean channel.
//!
//! The paper replaces one production retrieval channel (the Euclidean model,
//! AMCAD_E) with AMCAD on 4% of Taobao traffic for 7 days and reports CTR
//! and RPM lifts per result page (+0.5% CTR and +1.1% RPM overall, with the
//! largest lift on page 1 and decreasing lift on later pages).
//!
//! This binary trains both models on the same synthetic graph, builds a
//! retrieval engine for each, serves every next-day session through both
//! channels, and pushes the served ad lists through the position-aware click
//! / revenue simulator.

use amcad_bench::Scale;
use amcad_core::{build_index_inputs, evaluate_offline, run_ab_test};
use amcad_datagen::Dataset;
use amcad_eval::{relative_lift, ClickModelConfig, TextTable};
use amcad_model::{AmcadConfig, AmcadModel, Trainer};
use amcad_retrieval::{RetrievalConfig, RetrievalEngine};

fn build_channel(cfg: AmcadConfig, dataset: &Dataset, scale: Scale, seed: u64) -> RetrievalEngine {
    let mut model = AmcadModel::new(cfg, &dataset.graph);
    Trainer::new(scale.trainer(seed)).run(&mut model, &dataset.graph);
    let export = model.export(&dataset.graph, seed);
    let metrics = evaluate_offline(&export, dataset, &scale.eval(seed));
    eprintln!(
        "channel {} trained: Next AUC {:.3}",
        export.name, metrics.next_auc
    );
    let inputs = build_index_inputs(&export, dataset);
    RetrievalEngine::builder()
        .top_k(20)
        .threads(4)
        .retrieval(RetrievalConfig::default())
        .build(&inputs)
        .expect("trained exports always produce non-empty ad indices")
}

fn main() {
    let scale = Scale::from_env();
    let seed = 20230101;
    println!(
        "== Table X: simulated online A/B test (scale = {}) ==\n",
        scale.label()
    );

    let dataset = Dataset::generate(&scale.world(seed));
    let fd = scale.feature_dim();
    let control = build_channel(AmcadConfig::euclidean(fd, seed), &dataset, scale, seed);
    let treatment = build_channel(AmcadConfig::amcad(fd, seed), &dataset, scale, seed);

    let outcome = run_ab_test(
        &dataset,
        &control,
        &treatment,
        ClickModelConfig {
            seed,
            ..Default::default()
        },
    );

    let pages = outcome.control.num_pages();
    let mut ctr_row = vec!["CTR lift".to_string()];
    let mut rpm_row = vec!["RPM lift".to_string()];
    let mut header = vec!["Metric".to_string()];
    for p in 0..pages {
        header.push(if p + 1 == pages {
            format!("page {}+", p + 1)
        } else {
            format!("page {}", p + 1)
        });
        ctr_row.push(format!(
            "{:+.1}%",
            relative_lift(outcome.control.ctr(p), outcome.treatment.ctr(p))
        ));
        rpm_row.push(format!(
            "{:+.1}%",
            relative_lift(outcome.control.rpm(p), outcome.treatment.rpm(p))
        ));
    }
    header.push("Overall".into());
    ctr_row.push(format!(
        "{:+.1}%",
        relative_lift(
            outcome.control.overall_ctr(),
            outcome.treatment.overall_ctr()
        )
    ));
    rpm_row.push(format!(
        "{:+.1}%",
        relative_lift(
            outcome.control.overall_rpm(),
            outcome.treatment.overall_rpm()
        )
    ));
    let mut table = TextTable::new(header);
    table.row(ctr_row);
    table.row(rpm_row);

    println!("requests simulated: {}", outcome.requests);
    println!(
        "control  (AMCAD_E): overall CTR {:.2}%, RPM {:.2}",
        outcome.control.overall_ctr(),
        outcome.control.overall_rpm()
    );
    println!(
        "treatment (AMCAD) : overall CTR {:.2}%, RPM {:.2}\n",
        outcome.treatment.overall_ctr(),
        outcome.treatment.overall_rpm()
    );
    println!("{}", table.render());
    println!(
        "Paper (Table X): +0.5% CTR and +1.1% RPM overall, largest lift on page 1, shrinking with"
    );
    println!(
        "page depth.  Shape to check: the AMCAD channel's CTR/RPM lift is positive overall and the"
    );
    println!("gain is concentrated on early pages.");
}
