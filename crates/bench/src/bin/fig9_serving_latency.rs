//! Fig. 9 — online ad-retrieval response time versus offered QPS, per
//! ANN backend.
//!
//! The paper measures the production iGraph serving layer from 1K to 50K
//! queries per second and observes that response time grows slowly (roughly
//! doubling across a ten-fold QPS increase) until the cluster nears
//! saturation.  This binary runs the same sweep against the in-process
//! retrieval engine with an open-loop load generator — once per ANN
//! backend (exact scan, IVF, HNSW and quantised postings), all built from the same embeddings
//! through the same `RetrievalEngine` builder, each approximate backend
//! annotated with the recall@k of its ad-side posting lists against the
//! exact engine's — so the recall/latency trade-off of approximate
//! indexing shows up next to the paper's shape.
//! Workers serve through an `EngineHandle` snapshot (the production
//! entry point), and the latency ladder reports p50 / p90 / p95 / p99:
//! the saturation knee shows in the upper deciles before the median.

use std::sync::Arc;
use std::time::Duration;

use amcad_bench::json::{write_bench_json, Json};
use amcad_bench::Scale;
use amcad_core::{build_index_inputs, Pipeline, PipelineConfig};
use amcad_eval::TextTable;
use amcad_mnn::{HnswConfig, IndexBackend, IvfConfig, QuantConfig};
use amcad_retrieval::{
    EngineHandle, LoadReport, Request, RetrievalEngine, RuntimeConfig, Scenario, ServingConfig,
    ServingRuntime, ServingSimulator, ShardedEngine, TrafficPattern,
};

fn latency_table(reports: &[LoadReport]) -> TextTable {
    // p90 / p95 sit between the median and p99 on purpose: the
    // saturation knee moves the upper deciles well before the median
    let mut table = TextTable::new(vec![
        "Offered QPS",
        "Completed",
        "Achieved QPS",
        "Mean (ms)",
        "p50 (ms)",
        "p90 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "No coverage",
    ]);
    for r in reports {
        table.row(vec![
            format!("{:.0}", r.offered_qps),
            r.completed.to_string(),
            format!("{:.0}", r.achieved_qps),
            format!("{:.3}", r.mean_ms),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p90_ms),
            format!("{:.3}", r.p95_ms),
            format!("{:.3}", r.p99_ms),
            r.no_coverage.to_string(),
        ]);
    }
    table
}

fn levels_json(reports: &[LoadReport]) -> Json {
    Json::Arr(
        reports
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("offered_qps", Json::from(r.offered_qps)),
                    ("completed", Json::from(r.completed)),
                    ("achieved_qps", Json::from(r.achieved_qps)),
                    ("mean_ms", Json::from(r.mean_ms)),
                    ("p50_ms", Json::from(r.p50_ms)),
                    ("p90_ms", Json::from(r.p90_ms)),
                    ("p95_ms", Json::from(r.p95_ms)),
                    ("p99_ms", Json::from(r.p99_ms)),
                    ("no_coverage", Json::from(r.no_coverage)),
                    ("shed", Json::from(r.shed)),
                    ("timed_out", Json::from(r.timed_out)),
                    ("hedges", Json::from(r.hedges)),
                    ("hedge_wins", Json::from(r.hedge_wins)),
                    ("goodput_qps", Json::from(r.goodput_qps)),
                ])
            })
            .collect(),
    )
}

fn main() {
    let scale = Scale::from_env();
    let seed = 20221212;
    println!(
        "== Fig. 9: serving latency vs offered QPS (scale = {}) ==\n",
        scale.label()
    );

    // Build a complete serving stack through the pipeline.
    let mut cfg = PipelineConfig::small(seed);
    cfg.world = scale.world(seed);
    cfg.trainer = scale.trainer(seed);
    cfg.model = amcad_model::AmcadConfig::amcad(scale.feature_dim(), seed);
    let index_config = cfg.index;
    let retrieval_config = cfg.retrieval;
    let result = Pipeline::new(cfg).run();
    let inputs = build_index_inputs(&result.export, &result.dataset);

    // Request templates from the evaluation sessions.
    let requests: Vec<Request> = result
        .dataset
        .eval_sessions
        .iter()
        .take(500)
        .map(|s| Request {
            query: s.query.0,
            preclick_items: result
                .dataset
                .preclick_items(s)
                .iter()
                .map(|n| n.0)
                .collect(),
        })
        .collect();

    let backends = [
        IndexBackend::Exact,
        IndexBackend::Ivf(IvfConfig::default()),
        IndexBackend::Hnsw(HnswConfig::default()),
        IndexBackend::Quant(QuantConfig::default()),
    ];
    let qps_levels = [
        1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0, 100_000.0,
    ];
    let serving = ServingConfig {
        workers: 4,
        requests_per_level: if scale == Scale::Tiny { 2_000 } else { 5_000 },
        batch_size: 8,
    };

    let mut approx_engine: Option<RetrievalEngine> = None;
    let mut backends_json: Vec<Json> = Vec::new();
    for backend in backends {
        // the pipeline already built the exact engine with this exact
        // index/retrieval config — reuse it instead of re-running the
        // most expensive offline stage; the approximate backends rebuild
        // from the same embeddings
        let engine = match backend {
            IndexBackend::Exact => &result.engine,
            _ => approx_engine.insert(
                RetrievalEngine::builder()
                    .index(index_config)
                    .backend(backend)
                    .retrieval(retrieval_config)
                    .build(&inputs)
                    .expect("pipeline inputs always build a valid engine"),
            ),
        };

        // quality context for the approximate backends: recall of their
        // ad-side (Q2A + I2A) posting lists against the exact engine's
        let recall = match backend {
            IndexBackend::Exact => None,
            _ => Some(
                engine
                    .indexes()
                    .ad_recall_against(result.engine.indexes(), index_config.top_k),
            ),
        };
        let recall_note = recall.map_or(String::new(), |r| {
            format!(" (ad-side recall@{} vs exact: {r:.3})", index_config.top_k)
        });
        println!("-- backend: {}{recall_note}", backend.label());

        // serve the production way: workers hit the hot-swappable handle,
        // each request pinning the current snapshot
        let handle = EngineHandle::new(engine.clone());
        let sim = ServingSimulator::new(&handle, serving);
        let reports = sim.sweep(&requests, &qps_levels);
        println!("{}", latency_table(&reports).render());
        backends_json.push(Json::obj(vec![
            ("backend", Json::from(backend.label())),
            ("recall_vs_exact", recall.map_or(Json::Null, Json::from)),
            ("levels", levels_json(&reports)),
        ]));
    }

    // -- The cluster topology: 2 shards × 2 replicas, parallel fan-out ----
    // Same exact-backend rankings, but the paper's deployment shape: ads
    // hash-partitioned, per-shard builds on the worker pool, replicated
    // serving with round-robin — including the degraded case where one
    // replica per shard has been killed and traffic has failed over.
    let sharded = std::sync::Arc::new(
        ShardedEngine::builder()
            .shards(2)
            .replicas(2)
            .fanout_threads(2)
            .index(index_config)
            .retrieval(retrieval_config)
            .build(&inputs)
            .expect("pipeline inputs always build a valid sharded engine"),
    );
    println!(
        "-- topology: exact x{} shards x{} replicas (parallel fan-out)",
        sharded.num_shards(),
        sharded.replicas()
    );
    // the handle shares (not clones) the engine, so the replica kills
    // below hit the instance actually serving traffic
    let handle = EngineHandle::from_arc(sharded.clone());
    let reports = ServingSimulator::new(&handle, serving).sweep(&requests, &qps_levels);
    println!("{}", latency_table(&reports).render());
    // the healthy low-load tail seeds the hedge delay below (p9x-derived)
    let healthy_p95_ms = reports.first().map_or(1.0, |r| r.p95_ms);
    let healthy_levels = levels_json(&reports);
    let healthy_serves = sharded.replica_serves();
    for shard in 0..sharded.active_shards() {
        sharded.fail_replica(shard, 1);
    }
    println!("-- same topology, one replica per shard killed (failover)");
    let reports = ServingSimulator::new(&handle, serving).sweep(&requests, &qps_levels);
    println!("{}", latency_table(&reports).render());
    // delta since the kill, not cumulative totals: the killed replicas'
    // healthy-sweep traffic would otherwise mask that they went silent
    let routed_after_kill: Vec<Vec<u64>> = sharded
        .replica_serves()
        .iter()
        .zip(&healthy_serves)
        .map(|(now, before)| now.iter().zip(before).map(|(n, b)| n - b).collect())
        .collect();
    println!(
        "requests routed per replica per shard since the kill: {routed_after_kill:?} — killed replicas received zero.\n"
    );

    // -- The serving runtime: open-loop ladder with admission control -----
    // The same 2x2 topology behind the persistent ServingRuntime: a
    // bounded admission queue, per-request deadlines, SLO-driven load
    // shedding and hedged requests (delay derived from the healthy p95,
    // one replica degraded so hedges actually engage). The offered-QPS
    // ladder runs open-loop with Zipf-skewed template popularity and
    // deliberately crosses saturation: past the knee the runtime keeps
    // p99 bounded by shedding instead of queueing without bound.
    let hedge_delay = Duration::from_secs_f64((healthy_p95_ms * 3.0 / 1000.0).clamp(2e-4, 2e-3));
    let hedged = Arc::new(
        ShardedEngine::builder()
            .shards(2)
            .replicas(2)
            .fanout_threads(2)
            .hedge_delay(hedge_delay)
            .index(index_config)
            .retrieval(retrieval_config)
            .build(&inputs)
            .expect("pipeline inputs always build a valid sharded engine"),
    );
    // one straggling replica, an order of magnitude past the hedge delay
    hedged.delay_replica(0, 0, hedge_delay * 10);
    let runtime_config = RuntimeConfig {
        workers: 2,
        queue_depth: 64,
        deadline: Duration::from_millis(250),
        batch_size: 8,
    };
    let runtime = ServingRuntime::new(hedged.clone(), runtime_config)
        .expect("a valid runtime config")
        .with_hedge_metrics(Arc::clone(
            hedged.hedge_control().expect("hedging is configured"),
        ));
    println!(
        "-- serving runtime: 2 shards x 2 replicas, hedge delay {:.3} ms, queue depth {}, deadline {:?}",
        hedge_delay.as_secs_f64() * 1000.0,
        runtime_config.queue_depth,
        runtime_config.deadline,
    );
    let rungs: &[(f64, usize)] = &[
        (250.0, 600),
        (5_000.0, 1_500),
        (50_000.0, 2_000),
        (2_000_000.0, 4_000),
    ];
    let mut runtime_reports: Vec<LoadReport> = Vec::new();
    for &(qps, n) in rungs {
        let scenario = Scenario::sustained(qps, n).with_pattern(TrafficPattern::Zipf {
            exponent: 1.1,
            seed: 20221212,
        });
        runtime_reports.extend(runtime.run_scenario(&requests, &scenario));
    }
    let mut runtime_table = TextTable::new(vec![
        "Offered QPS",
        "Completed",
        "Shed",
        "Shed rate",
        "Timed out",
        "Hedges",
        "Hedge wins",
        "Goodput QPS",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    for r in &runtime_reports {
        let total = r.completed + r.shed;
        runtime_table.row(vec![
            format!("{:.0}", r.offered_qps),
            r.completed.to_string(),
            r.shed.to_string(),
            format!("{:.3}", r.shed as f64 / (total.max(1)) as f64),
            r.timed_out.to_string(),
            r.hedges.to_string(),
            r.hedge_wins.to_string(),
            format!("{:.0}", r.goodput_qps),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
        ]);
    }
    println!("{}", runtime_table.render());
    let stats = runtime.stats();
    println!(
        "runtime counters: admitted {}, completed {}, shed at admission {}, shed on deadline {}\n",
        stats.admitted, stats.completed, stats.shed_queue_full, stats.shed_deadline,
    );
    // CI smoke assertions: below the knee the runtime serves everything;
    // past saturation it must shed (the queue is 64 deep against an
    // arrival rate far beyond service capacity) while p99 stays bounded
    // by the queue instead of growing with the backlog
    let bottom = &runtime_reports[0];
    let top = runtime_reports.last().expect("the ladder has rungs");
    assert_eq!(
        bottom.shed, 0,
        "sub-saturation load must serve without shedding"
    );
    assert_eq!(bottom.completed, rungs[0].1);
    assert!(
        top.shed > 0,
        "past saturation the admission queue must shed (completed {}, shed {})",
        top.completed,
        top.shed
    );
    assert!(
        top.p99_ms < 5_000.0,
        "shedding must keep p99 bounded, got {:.1} ms",
        top.p99_ms
    );
    let hedge = hedged.hedge_control().expect("hedging is configured");
    assert!(
        hedge.issued() > 0,
        "a degraded replica under single-request load must trigger hedges"
    );
    println!(
        "hedges issued {}, won {} — the degraded replica loses the race to its sibling.\n",
        hedge.issued(),
        hedge.wins()
    );

    let json_path = write_bench_json(
        "fig9",
        &Json::obj(vec![
            ("bench", Json::from("fig9_serving_latency")),
            ("scale", Json::from(scale.label())),
            ("backends", Json::Arr(backends_json)),
            (
                "topology",
                Json::obj(vec![
                    ("shards", Json::from(sharded.num_shards())),
                    ("replicas", Json::from(sharded.replicas())),
                    ("healthy", healthy_levels),
                    ("failover", levels_json(&reports)),
                    (
                        "routed_since_kill",
                        Json::Arr(
                            routed_after_kill
                                .iter()
                                .map(|per_shard| {
                                    Json::Arr(per_shard.iter().map(|&n| Json::from(n)).collect())
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "runtime",
                Json::obj(vec![
                    ("shards", Json::from(2usize)),
                    ("replicas", Json::from(2usize)),
                    ("workers", Json::from(runtime_config.workers)),
                    ("queue_depth", Json::from(runtime_config.queue_depth)),
                    (
                        "deadline_ms",
                        Json::from(runtime_config.deadline.as_secs_f64() * 1000.0),
                    ),
                    (
                        "hedge_delay_ms",
                        Json::from(hedge_delay.as_secs_f64() * 1000.0),
                    ),
                    ("hedges_issued", Json::from(hedge.issued())),
                    ("hedge_wins", Json::from(hedge.wins())),
                    ("levels", levels_json(&runtime_reports)),
                ]),
            ),
        ]),
    )
    .expect("the bench artefact writes");
    println!("Machine-readable artefact: {}\n", json_path.display());

    println!("Paper (Fig. 9): response time grows from ≈1.2 ms at 1K QPS to ≈4.5 ms at 50K QPS —");
    println!("a ten-fold QPS increase only roughly doubles latency until saturation.");
    println!(
        "Shape to check: mean/p99 latency rises slowly with offered QPS and bends up sharply only"
    );
    println!(
        "once the offered load exceeds what the worker pool can sustain (achieved < offered)."
    );
    println!("Backend comparison: the IVF and HNSW engines serve the same API with bounded");
    println!("recall loss; their offline index builds probe nprobe clusters / walk an ef-wide");
    println!("graph beam per key instead of scanning every candidate (see table9 for the");
    println!("backend x ef_search recall/latency frontier).");
}
