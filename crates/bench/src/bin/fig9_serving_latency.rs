//! Fig. 9 — online ad-retrieval response time versus offered QPS.
//!
//! The paper measures the production iGraph serving layer from 1K to 50K
//! queries per second and observes that response time grows slowly (roughly
//! doubling across a ten-fold QPS increase) until the cluster nears
//! saturation.  This binary runs the same sweep against the in-process
//! two-layer retriever with an open-loop load generator; the absolute QPS
//! levels are scaled to a single machine, but the shape — a slowly rising
//! curve with a sharp knee at saturation — is the comparison target.

use amcad_bench::Scale;
use amcad_core::{Pipeline, PipelineConfig};
use amcad_eval::TextTable;
use amcad_retrieval::{Request, ServingConfig, ServingSimulator};

fn main() {
    let scale = Scale::from_env();
    let seed = 20221212;
    println!("== Fig. 9: serving latency vs offered QPS (scale = {}) ==\n", scale.label());

    // Build a complete serving stack through the pipeline.
    let mut cfg = PipelineConfig::small(seed);
    cfg.world = scale.world(seed);
    cfg.trainer = scale.trainer(seed);
    cfg.model = amcad_model::AmcadConfig::amcad(scale.feature_dim(), seed);
    let result = Pipeline::new(cfg).run();

    // Request templates from the evaluation sessions.
    let requests: Vec<Request> = result
        .dataset
        .eval_sessions
        .iter()
        .take(500)
        .map(|s| Request {
            query: s.query.0,
            preclick_items: result
                .dataset
                .preclick_items(s)
                .iter()
                .map(|n| n.0)
                .collect(),
        })
        .collect();

    let sim = ServingSimulator::new(
        &result.retriever,
        ServingConfig {
            workers: 4,
            requests_per_level: if scale == Scale::Tiny { 2_000 } else { 5_000 },
        },
    );
    let qps_levels = [1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0, 100_000.0];
    let reports = sim.sweep(&requests, &qps_levels);

    let mut table = TextTable::new(vec![
        "Offered QPS",
        "Completed",
        "Achieved QPS",
        "Mean (ms)",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    for r in &reports {
        table.row(vec![
            format!("{:.0}", r.offered_qps),
            r.completed.to_string(),
            format!("{:.0}", r.achieved_qps),
            format!("{:.3}", r.mean_ms),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
        ]);
    }
    println!("{}", table.render());
    println!("Paper (Fig. 9): response time grows from ≈1.2 ms at 1K QPS to ≈4.5 ms at 50K QPS —");
    println!("a ten-fold QPS increase only roughly doubles latency until saturation.");
    println!("Shape to check: mean/p99 latency rises slowly with offered QPS and bends up sharply only");
    println!("once the offered load exceeds what the worker pool can sustain (achieved < offered).");
}
