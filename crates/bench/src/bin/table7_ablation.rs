//! Table VII — ablation study.
//!
//! Removes one component of AMCAD at a time and reports AUC / HitRate@100 /
//! nDCG@100, matching the paper's rows: `- mixed` (single unified space),
//! `- curv` (Euclidean space), `- fusion` (no space fusion), `- proj`
//! (shared edge space) and `- comb` (uniform subspace weights).

use amcad_bench::{train_and_eval_amcad, Scale};
use amcad_datagen::Dataset;
use amcad_eval::TextTable;
use amcad_model::AmcadConfig;

fn main() {
    let scale = Scale::from_env();
    let seed = 20220707;
    println!(
        "== Table VII: ablation study (scale = {}) ==\n",
        scale.label()
    );

    let dataset = Dataset::generate(&scale.world(seed));
    let trainer = scale.trainer(seed);
    let eval = scale.eval(seed);
    let fd = scale.feature_dim();

    let rows: Vec<(&str, AmcadConfig)> = vec![
        ("Full AMCAD", AmcadConfig::amcad(fd, seed)),
        (
            "Node Encoder - mixed",
            AmcadConfig::unified_single(fd, seed),
        ),
        ("Node Encoder - curv", AmcadConfig::euclidean(fd, seed)),
        (
            "Node Encoder - fusion",
            AmcadConfig::without_fusion(fd, seed),
        ),
        (
            "Edge Scorer  - proj",
            AmcadConfig::without_projection(fd, seed),
        ),
        (
            "Edge Scorer  - comb",
            AmcadConfig::without_combination(fd, seed),
        ),
    ];

    let mut table = TextTable::new(vec![
        "Variant",
        "NextAUC",
        "Q2A HR@100",
        "Q2A nDCG@100",
        "Q2I HR@100",
        "Q2I nDCG@100",
    ]);
    for (label, cfg) in rows {
        let r = train_and_eval_amcad(cfg, &dataset, trainer, &eval);
        table.row(vec![
            label.to_string(),
            format!("{:.3}", r.metrics.next_auc),
            format!("{:.3}", r.metrics.q2a.hitrate[1]),
            format!("{:.3}", r.metrics.q2a.ndcg[1]),
            format!("{:.3}", r.metrics.q2i.hitrate[1]),
            format!("{:.3}", r.metrics.q2i.ndcg[1]),
        ]);
        eprintln!("done: {label}");
    }
    println!("{}", table.render());
    println!(
        "Shape to check against the paper's Table VII: every ablation is at or below Full AMCAD;"
    );
    println!(
        "`- curv` (losing curved space entirely) hurts the most, `- mixed` and `- proj` hurt next,"
    );
    println!("`- fusion` and `- comb` cause the smallest drops.");
}
