//! Fig. 8 — Next AUC versus total embedding dimension for 1–4 subspaces.
//!
//! The paper sweeps the *total* dimension (24…120) and the number of
//! subspaces (1…4) under the constraint that all subspaces share the total
//! dimension equally, finding that two subspaces is the sweet spot and that
//! too many subspaces starve each subspace of dimensions.  This binary runs
//! the same grid at laptop scale and prints Next AUC per cell.

use amcad_bench::{train_and_eval_amcad, Scale};
use amcad_datagen::Dataset;
use amcad_eval::TextTable;
use amcad_model::{AmcadConfig, SubspaceCfg};

/// Build an AMCAD configuration with `m` unified subspaces sharing a total
/// dimension of `total_dim` (id/category/term feature dims are derived from
/// the per-subspace dimension).
fn config_for(total_dim: usize, m: usize, seed: u64) -> AmcadConfig {
    let per_sub = (total_dim / m).max(2);
    let mut cfg = AmcadConfig::amcad(4, seed);
    cfg.name = format!("AMCAD M={m} dim={total_dim}");
    // split the per-subspace dimension into id / category / term features
    cfg.id_dim = (per_sub / 2).max(1);
    cfg.category_dim = (per_sub / 4).max(1);
    cfg.term_dim = per_sub - cfg.id_dim - cfg.category_dim;
    cfg.subspaces = (0..m)
        .map(|_| SubspaceCfg::unified(cfg.id_dim + cfg.category_dim + cfg.term_dim))
        .collect();
    cfg
}

fn main() {
    let scale = Scale::from_env();
    let seed = 20221010;
    println!(
        "== Fig. 8: Next AUC vs embedding dimension and subspace count (scale = {}) ==\n",
        scale.label()
    );

    let dataset = Dataset::generate(&scale.world(seed));
    let trainer = scale.trainer(seed);
    let eval = scale.eval(seed);

    // Total dimensions swept (scaled down from the paper's 24..120 grid at
    // tiny scale to keep runtime in check).
    let dims: Vec<usize> = match scale {
        Scale::Tiny => vec![8, 16, 24, 32],
        Scale::Small => vec![16, 24, 48, 72],
        Scale::Day => vec![24, 48, 72, 96, 120],
    };
    let subspace_counts = [1usize, 2, 3, 4];

    let mut header: Vec<String> = vec!["Total dim".into()];
    header.extend(subspace_counts.iter().map(|m| format!("{m} subspace(s)")));
    let mut table = TextTable::new(header);

    let mut best: Option<(f64, usize, usize)> = None;
    for &dim in &dims {
        let mut row = vec![dim.to_string()];
        for &m in &subspace_counts {
            if dim / m < 2 {
                row.push("-".into());
                continue;
            }
            let cfg = config_for(dim, m, seed);
            let r = train_and_eval_amcad(cfg, &dataset, trainer, &eval);
            let auc = r.metrics.next_auc;
            if best.is_none_or(|(b, _, _)| auc > b) {
                best = Some((auc, dim, m));
            }
            row.push(format!("{auc:.3}"));
            eprintln!("done: dim={dim} M={m} auc={auc:.3}");
        }
        table.row(row);
    }
    println!("{}", table.render());
    if let Some((auc, dim, m)) = best {
        println!("Best cell: total dim {dim}, {m} subspaces (Next AUC {auc:.3}).");
    }
    println!(
        "Shape to check against the paper's Fig. 8: AUC rises with total dimension and saturates;"
    );
    println!(
        "two subspaces is generally the best or near-best column, and 3–4 subspaces only catch up"
    );
    println!("once each subspace has enough dimensions.");
}
