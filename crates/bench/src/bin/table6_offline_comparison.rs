//! Table VI — main offline comparison.
//!
//! Trains the Euclidean walk-based baselines (DeepWalk, LINE, Node2Vec,
//! Metapath2Vec), the constant-curvature family (AMCAD_E/H/S/U plus the
//! HGCN- and HyperML-like substitutes), the mixed-curvature family (GIL-like,
//! M2GNN-like, best product space) and full AMCAD on the same synthetic
//! "1 day" graph, then reports Next AUC, training time and HitRate/nDCG@K
//! for Q2I and Q2A.
//!
//! Scale is controlled with `AMCAD_SCALE` (tiny | small | day).

use amcad_bench::{metric_header, metric_row, train_and_eval_amcad, train_and_eval_sgns, Scale};
use amcad_datagen::Dataset;
use amcad_eval::TextTable;
use amcad_manifold::SpaceKind;
use amcad_model::{AmcadConfig, SgnsConfig, WalkStrategy};

fn main() {
    let scale = Scale::from_env();
    let seed = 20220314;
    println!(
        "== Table VI: offline comparison (scale = {}) ==\n",
        scale.label()
    );

    let dataset = Dataset::generate(&scale.world(seed));
    let stats = dataset.graph.stats();
    println!(
        "graph: {} queries, {} items, {} ads, {} edges\n",
        stats.queries,
        stats.items,
        stats.ads,
        stats.total_edges()
    );
    let trainer = scale.trainer(seed);
    let eval = scale.eval(seed);
    let fd = scale.feature_dim();
    let sgns = SgnsConfig {
        dim: 4 * fd,
        ..Default::default()
    };

    let mut table = TextTable::new(metric_header());
    let mut push = |name: &str, group: &str, m: &amcad_core::OfflineMetrics, secs: f64| {
        let mut row = vec![format!("[{group}] {name}")];
        row.extend(metric_row(m, secs));
        table.row(row);
    };

    // --- E: Euclidean walk-based baselines + AMCAD_E ------------------------
    for strategy in [
        WalkStrategy::default_deepwalk(),
        WalkStrategy::LineFirst,
        WalkStrategy::LineSecond,
        WalkStrategy::default_node2vec(),
        WalkStrategy::default_metapath2vec(),
    ] {
        let r = train_and_eval_sgns(strategy, &dataset, &sgns, &eval);
        push(&r.name, "E", &r.metrics, r.train_seconds);
        eprintln!("done: {}", r.name);
    }
    {
        let r = train_and_eval_amcad(AmcadConfig::euclidean(fd, seed), &dataset, trainer, &eval);
        push(&r.name, "E", &r.metrics, r.train_seconds);
        eprintln!("done: {}", r.name);
    }

    // --- C: constant-curvature models ---------------------------------------
    for cfg in [
        AmcadConfig::hyperml_like(fd, seed),
        AmcadConfig::hgcn_like(fd, seed),
        AmcadConfig::hyperbolic(fd, seed),
        AmcadConfig::spherical(fd, seed),
        AmcadConfig::unified_single(fd, seed),
    ] {
        let r = train_and_eval_amcad(cfg, &dataset, trainer, &eval);
        push(&r.name, "C", &r.metrics, r.train_seconds);
        eprintln!("done: {}", r.name);
    }

    // --- M: mixed-curvature models -------------------------------------------
    for cfg in [
        AmcadConfig::gil_like(fd, seed),
        AmcadConfig::product_space(&[SpaceKind::Spherical, SpaceKind::Spherical], fd, seed),
        AmcadConfig::m2gnn_like(fd, seed),
        AmcadConfig::amcad(fd, seed),
    ] {
        let r = train_and_eval_amcad(cfg, &dataset, trainer, &eval);
        push(&r.name, "M", &r.metrics, r.train_seconds);
        eprintln!("done: {}", r.name);
    }

    println!("{}", table.render());
    println!("Shape to check against the paper's Table VI:");
    println!("  1. walk-based Euclidean baselines < AMCAD_E < constant-curvature < mixed-curvature < AMCAD;");
    println!("  2. curved training time exceeds Euclidean training time (≈ +40% in the paper);");
    println!("  3. AMCAD is best or tied-best on every metric column.");
}
