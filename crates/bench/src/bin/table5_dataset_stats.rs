//! Table V — statistics of the interaction graphs built from behaviour logs
//! of different durations.
//!
//! The paper reports node counts (query / item / ad) and edge counts for the
//! 1-day and 7-day Taobao log windows.  This binary generates the synthetic
//! scale ladder (1 hour / 1 day / 3 days / 7 days presets, scaled to laptop
//! size) and prints the same columns.

use amcad_datagen::{Dataset, WorldConfig};
use amcad_eval::TextTable;

fn main() {
    println!("== Table V: dataset statistics (synthetic scale ladder) ==\n");
    let mut table = TextTable::new(vec![
        "Logs",
        "#Nodes(Query)",
        "#Nodes(Item)",
        "#Nodes(Ad)",
        "#Edges(click)",
        "#Edges(co-click)",
        "#Edges(semantic)",
        "#Edges(co-bid)",
        "#Edges(total)",
    ]);
    for (label, cfg) in WorldConfig::scale_ladder(7) {
        let dataset = Dataset::generate(&cfg);
        let stats = dataset.graph.stats();
        table.row(vec![
            label.to_string(),
            stats.queries.to_string(),
            stats.items.to_string(),
            stats.ads.to_string(),
            stats.edges_per_relation[0].to_string(),
            stats.edges_per_relation[1].to_string(),
            stats.edges_per_relation[2].to_string(),
            stats.edges_per_relation[3].to_string(),
            stats.total_edges().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper (Table V): 1 day = 40M/60M/6M nodes, 5.3B edges; 7 days = 150M/140M/10M nodes, 30.8B edges."
    );
    println!("Shape to check: node and edge counts grow monotonically with the log window,");
    println!("items > queries > ads, and edges grow faster than nodes.");
}
