//! Table IX — offline runtime versus graph size: training plus MNN index
//! construction per ANN backend.
//!
//! The paper trains on log windows of 1 hour / 1 day / 3 days / 7 days and
//! reports node count, edge count, iteration count and total runtime,
//! observing near-linear scaling of runtime with the number of edges.  This
//! binary runs the same ladder at laptop scale; the number of training
//! iterations is proportional to the number of sessions (≈ one pass over
//! the data), so runtime should grow roughly linearly with graph size.
//! The offline stage the paper distributes over MNN workers — inverted
//! index construction — is timed per backend (exact scan vs IVF vs HNSW vs
//! quantised postings) through the same `IndexSet::build` API, showing
//! where approximate indexing starts paying off as the candidate sets
//! grow; a backend × knob sweep (`ef_search` for HNSW, `rerank_k` for the
//! quantised backend) then puts each approximate backend's recall@k
//! against exact next to its build time and serving tail latency — the
//! recall/latency frontier in one table — and a memory-footprint section
//! reports the quantised bytes/ad against the full-precision layout.
//!
//! The second half models the paper's *cluster* dimension along its three
//! axes: the largest rung's inputs are rebuilt as a `ShardedEngine` at
//! 1 / 2 / 4 shards with the per-shard builds running on a scoped worker
//! pool 1 / 2 / 4 threads wide (reporting the measured build-time
//! speedup — each shard's build is independent, so more build threads cut
//! wall clock without changing a single byte of the result), and each
//! serving topology (shards × replicas × fan-out threads) is load-tested
//! through the serving simulator with its p50 / p95 / p99 tail — the
//! Table IX ⇄ Fig. 9 bridge. A final sweep measures the incremental path:
//! a ~10% corpus churn applied as a delta publish
//! (`EngineHandle::publish_delta`) versus rebuilding the post-delta
//! corpus from scratch, at shard counts 1 / 2 / 4.

use std::sync::Arc;
use std::time::{Duration, Instant};

use amcad_bench::json::{write_bench_json, Json};
use amcad_bench::Scale;
use amcad_core::build_index_inputs;
use amcad_datagen::{Dataset, WorldConfig};
use amcad_eval::TextTable;
use amcad_mnn::{HnswConfig, IndexBackend, IvfConfig, QuantConfig, QuantIndex};
use amcad_model::{AmcadConfig, AmcadModel, Trainer, TrainerConfig};
use amcad_retrieval::{
    EngineHandle, IndexBuildConfig, IndexBuildInputs, IndexDelta, IndexSet, Request,
    RetrievalEngine, Retrieve, RuntimeConfig, Scenario, ServingConfig, ServingRuntime,
    ServingSimulator, ShardedDeltaBuilder, ShardedEngine, TrafficPattern,
};

fn main() {
    let scale = Scale::from_env();
    let seed = 20221111;
    println!(
        "== Table IX: offline runtime vs graph size (scale = {}) ==\n",
        scale.label()
    );

    // Scale the ladder down further for the tiny preset so the whole sweep
    // stays fast; the *ratios* between rungs are what matters.
    let base = scale.world(seed);
    let ladder: Vec<(&str, WorldConfig)> = vec![
        ("1 hour", base.scaled(1.0 / 8.0)),
        ("1 day", base.clone()),
        ("3 days", base.scaled(2.0)),
        ("7 days", base.scaled(4.0)),
    ];

    let fd = scale.feature_dim();
    let batch = scale.trainer(seed).batch_size;
    let mut table = TextTable::new(vec![
        "Logs",
        "#Nodes",
        "#Edges",
        "#Iterations",
        "Train (s)",
        "Edges / second",
        "Index exact (s)",
        "Index IVF (s)",
        "Index HNSW (s)",
        "Index Quant (s)",
    ]);
    let mut prev: Option<(usize, f64)> = None;
    let mut largest_rung: Option<(Dataset, IndexBuildInputs)> = None;
    let mut ladder_json: Vec<Json> = Vec::new();
    for (label, world) in ladder {
        let dataset = Dataset::generate(&world);
        let stats = dataset.graph.stats();
        // one pass over the sessions: iterations ∝ sessions / batch
        let steps = (world.train_sessions / batch).max(10);
        let trainer_cfg = TrainerConfig {
            batch_size: batch,
            steps,
            seed,
            lru_max_age: 0,
        };
        let mut model = AmcadModel::new(AmcadConfig::amcad(fd, seed), &dataset.graph);
        let start = Instant::now();
        Trainer::new(trainer_cfg).run(&mut model, &dataset.graph);
        let secs = start.elapsed().as_secs_f64();

        // Offline MNN stage: same embeddings, both index backends.
        let export = model.export(&dataset.graph, seed);
        let inputs = build_index_inputs(&export, &dataset);
        let time_build = |backend: IndexBackend| {
            // single-threaded for BOTH backends: only the exact scan has a
            // parallel bulk path, so equal thread counts keep the columns
            // an algorithmic comparison rather than a threading one
            let config = IndexBuildConfig {
                top_k: 20,
                threads: 1,
                backend,
            };
            let start = Instant::now();
            let set = IndexSet::build(&inputs, config).expect("ladder inputs are duplicate-free");
            let secs = start.elapsed().as_secs_f64();
            assert!(set.total_keys() > 0);
            secs
        };
        let exact_secs = time_build(IndexBackend::Exact);
        let ivf_secs = time_build(IndexBackend::Ivf(IvfConfig::default()));
        let hnsw_secs = time_build(IndexBackend::Hnsw(HnswConfig::default()));
        let quant_secs = time_build(IndexBackend::Quant(QuantConfig::default()));

        table.row(vec![
            label.to_string(),
            stats.total_nodes().to_string(),
            stats.total_edges().to_string(),
            steps.to_string(),
            format!("{secs:.1}"),
            format!("{:.0}", stats.total_edges() as f64 / secs.max(1e-9)),
            format!("{exact_secs:.2}"),
            format!("{ivf_secs:.2}"),
            format!("{hnsw_secs:.2}"),
            format!("{quant_secs:.2}"),
        ]);
        ladder_json.push(Json::obj(vec![
            ("logs", Json::from(label)),
            ("nodes", Json::from(stats.total_nodes())),
            ("edges", Json::from(stats.total_edges())),
            ("iterations", Json::from(steps)),
            ("train_s", Json::from(secs)),
            (
                "edges_per_s",
                Json::from(stats.total_edges() as f64 / secs.max(1e-9)),
            ),
            ("index_exact_s", Json::from(exact_secs)),
            ("index_ivf_s", Json::from(ivf_secs)),
            ("index_hnsw_s", Json::from(hnsw_secs)),
            ("index_quant_s", Json::from(quant_secs)),
        ]));
        if let Some((prev_edges, prev_secs)) = prev {
            eprintln!(
                "{label}: edges x{:.2}, runtime x{:.2}",
                stats.total_edges() as f64 / prev_edges as f64,
                secs / prev_secs
            );
        }
        prev = Some((stats.total_edges(), secs));
        largest_rung = Some((dataset, inputs));
    }
    println!("{}", table.render());
    // -- Sharded offline build + online serving, per shard count ----------
    let (dataset, inputs) = largest_rung.expect("the ladder always has rungs");
    let requests: Vec<Request> = dataset
        .eval_sessions
        .iter()
        .take(500)
        .map(|s| Request {
            query: s.query.0,
            preclick_items: dataset.preclick_items(s).iter().map(|n| n.0).collect(),
        })
        .collect();
    let serving = ServingConfig {
        workers: 4,
        requests_per_level: if scale == Scale::Tiny { 1_500 } else { 4_000 },
        batch_size: 8,
    };
    let qps = 20_000.0;

    // -- Backend × knob: the recall/latency frontier ----------------------
    // The approximate backends trade posting-list recall for build work:
    // IVF probes nprobe clusters per key, HNSW walks an ef_search-wide
    // graph beam, and the quantised backend reranks the top `rerank_k`
    // PQ-approximate candidates exactly. All knobs act at *index-build*
    // time (posting lists are static at serving time), so the frontier
    // pairs each configuration's build wall clock and ad-side recall@k
    // against the exact reference with the serving tail it produces.
    println!("== Backend x knob recall/latency frontier (largest rung) ==\n");
    let top_k = 20usize;
    let widest_knob = "ef=128";
    let frontier_backends: Vec<(&'static str, IndexBackend)> = vec![
        ("-", IndexBackend::Exact),
        ("nprobe=4/16", IndexBackend::Ivf(IvfConfig::default())),
        (
            "ef=8",
            IndexBackend::Hnsw(HnswConfig::default().with_ef_search(8)),
        ),
        (
            "ef=32",
            IndexBackend::Hnsw(HnswConfig::default().with_ef_search(32)),
        ),
        (
            widest_knob,
            IndexBackend::Hnsw(HnswConfig::default().with_ef_search(128)),
        ),
        (
            "rerank=16",
            IndexBackend::Quant(QuantConfig {
                ksub: 16,
                train_iters: 8,
                rerank_k: 16,
                seed: 13,
            }),
        ),
        ("rerank=48", IndexBackend::Quant(QuantConfig::default())),
    ];
    let mut frontier = TextTable::new(vec![
        "Backend",
        "Knob",
        "Build (s)",
        "Recall@20",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
    ]);
    // the exact row doubles as the recall reference, so the most
    // expensive build in the sweep happens exactly once
    let mut exact_engine: Option<RetrievalEngine> = None;
    let mut hnsw_widest_recall = 0.0f64;
    let mut frontier_json: Vec<Json> = Vec::new();
    for (knob, backend) in frontier_backends {
        let start = Instant::now();
        let engine = RetrievalEngine::builder()
            .index(IndexBuildConfig {
                top_k,
                threads: 1,
                backend,
            })
            .build(&inputs)
            .expect("ladder inputs always build a valid engine");
        let build_secs = start.elapsed().as_secs_f64();
        let recall = match &exact_engine {
            None => 1.0, // the exact reference against itself
            Some(reference) => engine
                .indexes()
                .ad_recall_against(reference.indexes(), top_k),
        };
        assert!(
            (0.0..=1.0 + 1e-12).contains(&recall),
            "recall must be a fraction, got {recall}"
        );
        if knob == widest_knob {
            hnsw_widest_recall = recall;
        }
        let report = ServingSimulator::new(&engine, serving).run_level(&requests, qps);
        frontier.row(vec![
            backend.label().to_string(),
            knob.to_string(),
            format!("{build_secs:.2}"),
            format!("{recall:.3}"),
            format!("{:.3}", report.p50_ms),
            format!("{:.3}", report.p95_ms),
            format!("{:.3}", report.p99_ms),
        ]);
        frontier_json.push(Json::obj(vec![
            ("backend", Json::from(backend.label())),
            ("knob", Json::from(knob)),
            ("build_s", Json::from(build_secs)),
            ("recall_at_20", Json::from(recall)),
            ("p50_ms", Json::from(report.p50_ms)),
            ("p95_ms", Json::from(report.p95_ms)),
            ("p99_ms", Json::from(report.p99_ms)),
        ]));
        if backend == IndexBackend::Exact {
            exact_engine = Some(engine);
        }
    }
    println!("{}", frontier.render());
    // the CI smoke run pins the quality end of the frontier: a wide beam
    // must keep most of the exact neighbours
    assert!(
        hnsw_widest_recall >= 0.5,
        "HNSW {widest_knob} should recover most exact neighbours, got {hnsw_widest_recall:.3}"
    );
    println!("Frontier note: recall is measured over the ad-side (Q2A + I2A) posting lists");
    println!("against the exact build; serving latency reads the same-length posting lists");
    println!("whatever backend built them, so the knobs buy *build* time — the paper's");
    println!("distributed-MNN stage — at a measured recall cost.\n");

    // -- Parallel sharded build: shards × build-pool width ----------------
    // Per-shard index builds are independent, so the scoped worker pool
    // cuts wall clock (up to the core count — speedups on a single-core
    // runner honestly report ≈1x) while producing byte-identical engines.
    println!("\n== Parallel sharded build (largest rung, single-threaded per shard) ==\n");
    let build_widths = [1usize, 2, 4];
    let mut build_table = TextTable::new(vec![
        "Shards",
        "Build 1T (s)",
        "Build 2T (s)",
        "Build 4T (s)",
        "Speedup 2T",
        "Speedup 4T",
    ]);
    let mut speedup_2t_at_4_shards = 1.0;
    let mut build_json: Vec<Json> = Vec::new();
    for shards in [1usize, 2, 4] {
        let timed_build = |build_threads: usize| {
            let start = Instant::now();
            let engine = ShardedEngine::builder()
                .shards(shards)
                .top_k(20)
                .threads(1) // single-threaded per shard: the sweep isolates the build pool
                .build_threads(build_threads)
                .build(&inputs)
                .expect("ladder inputs always build a valid sharded engine");
            (start.elapsed().as_secs_f64(), engine.active_shards())
        };
        let times: Vec<f64> = build_widths.iter().map(|&w| timed_build(w).0).collect();
        if shards == 4 {
            speedup_2t_at_4_shards = times[0] / times[1].max(1e-9);
        }
        build_table.row(vec![
            shards.to_string(),
            format!("{:.2}", times[0]),
            format!("{:.2}", times[1]),
            format!("{:.2}", times[2]),
            format!("{:.2}x", times[0] / times[1].max(1e-9)),
            format!("{:.2}x", times[0] / times[2].max(1e-9)),
        ]);
        build_json.push(Json::obj(vec![
            ("shards", Json::from(shards)),
            ("build_1t_s", Json::from(times[0])),
            ("build_2t_s", Json::from(times[1])),
            ("build_4t_s", Json::from(times[2])),
            ("speedup_2t", Json::from(times[0] / times[1].max(1e-9))),
            ("speedup_4t", Json::from(times[0] / times[2].max(1e-9))),
        ]));
    }
    println!("{}", build_table.render());
    println!(
        "Measured build-time speedup with 2 build threads (4 shards): {speedup_2t_at_4_shards:.2}x on {} core(s).\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );

    // -- Serving topologies: shards × replicas × fan-out threads ----------
    println!("== Serving topologies at {qps:.0} offered QPS (largest rung) ==\n");
    let mut shard_table = TextTable::new(vec![
        "Shards",
        "Replicas",
        "Fanout T",
        "Build (s)",
        "Mean (ms)",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "Achieved QPS",
    ]);
    let mut topology_json: Vec<Json> = Vec::new();
    for (shards, replicas, fanout_threads) in [
        (1usize, 1usize, 1usize),
        (2, 1, 1),
        (2, 2, 1),
        (2, 2, 2),
        (4, 2, 2),
    ] {
        let start = Instant::now();
        let engine = ShardedEngine::builder()
            .shards(shards)
            .replicas(replicas)
            .fanout_threads(fanout_threads)
            .top_k(20)
            .threads(1)
            .build(&inputs)
            .expect("ladder inputs always build a valid sharded engine");
        let build_secs = start.elapsed().as_secs_f64();
        let report = ServingSimulator::new(&engine, serving).run_level(&requests, qps);
        shard_table.row(vec![
            shards.to_string(),
            replicas.to_string(),
            fanout_threads.to_string(),
            format!("{build_secs:.2}"),
            format!("{:.3}", report.mean_ms),
            format!("{:.3}", report.p50_ms),
            format!("{:.3}", report.p95_ms),
            format!("{:.3}", report.p99_ms),
            format!("{:.0}", report.achieved_qps),
        ]);
        topology_json.push(Json::obj(vec![
            ("shards", Json::from(shards)),
            ("replicas", Json::from(replicas)),
            ("fanout_threads", Json::from(fanout_threads)),
            ("build_s", Json::from(build_secs)),
            ("mean_ms", Json::from(report.mean_ms)),
            ("p50_ms", Json::from(report.p50_ms)),
            ("p95_ms", Json::from(report.p95_ms)),
            ("p99_ms", Json::from(report.p99_ms)),
            ("achieved_qps", Json::from(report.achieved_qps)),
        ]));
    }
    println!("{}", shard_table.render());
    println!("Fan-out note: the per-request pool spawns scoped threads, a cost that only");
    println!("amortises across real cores — with few cores, fanout threads > 1 trades");
    println!("latency for nothing (rankings stay identical either way).");
    println!("Sharding note: every shard rebuilds the replicated key indices, so total build work");
    println!("grows with shard count while each shard's ad-side build (the part the paper");
    println!("distributes) shrinks; rankings are bit-identical at every shard count, replica");
    println!("count and pool width — replication buys failover, never a ranking change.\n");

    // -- Serving runtime: offered-QPS ladder × topology -------------------
    // The persistent ServingRuntime (bounded admission queue, deadlines,
    // load shedding, hedged requests) over three deployment shapes, each
    // driven open-loop across an offered-QPS ladder that crosses
    // saturation. Goodput (completions inside the deadline per second)
    // and the shed rate make the admission-control trade visible: past
    // the knee the runtime sheds a growing fraction instead of letting
    // p99 grow with the backlog. Replicated topologies hedge with one
    // replica degraded, so the hedge-rate column engages.
    println!("== Serving runtime ladder: offered QPS x topology (largest rung) ==\n");
    let runtime_config = RuntimeConfig {
        workers: 2,
        queue_depth: 64,
        deadline: Duration::from_millis(250),
        batch_size: 8,
    };
    let hedge_delay = Duration::from_millis(1);
    let runtime_rungs: &[(f64, usize)] = &[(1_000.0, 800), (20_000.0, 1_500), (1_000_000.0, 3_000)];
    let mut runtime_table = TextTable::new(vec![
        "Shards",
        "Replicas",
        "Offered QPS",
        "Completed",
        "Shed",
        "Shed rate",
        "Timed out",
        "Hedges",
        "Hedge wins",
        "Goodput QPS",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    let mut runtime_json: Vec<Json> = Vec::new();
    for (shards, replicas) in [(1usize, 1usize), (2, 2), (4, 2)] {
        let mut builder = ShardedEngine::builder()
            .shards(shards)
            .replicas(replicas)
            .fanout_threads(2)
            .top_k(20)
            .threads(1);
        if replicas > 1 {
            builder = builder.hedge_delay(hedge_delay);
        }
        let engine = Arc::new(
            builder
                .build(&inputs)
                .expect("ladder inputs always build a valid sharded engine"),
        );
        if replicas > 1 {
            // a straggling replica far past the hedge delay: hedges engage
            engine.delay_replica(0, 0, hedge_delay * 10);
        }
        let mut runtime =
            ServingRuntime::new(engine.clone(), runtime_config).expect("a valid runtime config");
        if let Some(control) = engine.hedge_control() {
            runtime = runtime.with_hedge_metrics(Arc::clone(control));
        }
        for &(qps, n) in runtime_rungs {
            let scenario = Scenario::sustained(qps, n).with_pattern(TrafficPattern::Zipf {
                exponent: 1.1,
                seed,
            });
            for r in runtime.run_scenario(&requests, &scenario) {
                let total = r.completed + r.shed;
                assert_eq!(total, n, "every request is accounted for, served or shed");
                runtime_table.row(vec![
                    shards.to_string(),
                    replicas.to_string(),
                    format!("{:.0}", r.offered_qps),
                    r.completed.to_string(),
                    r.shed.to_string(),
                    format!("{:.3}", r.shed as f64 / total.max(1) as f64),
                    r.timed_out.to_string(),
                    r.hedges.to_string(),
                    r.hedge_wins.to_string(),
                    format!("{:.0}", r.goodput_qps),
                    format!("{:.3}", r.p50_ms),
                    format!("{:.3}", r.p99_ms),
                ]);
                runtime_json.push(Json::obj(vec![
                    ("shards", Json::from(shards)),
                    ("replicas", Json::from(replicas)),
                    ("offered_qps", Json::from(r.offered_qps)),
                    ("completed", Json::from(r.completed)),
                    ("shed", Json::from(r.shed)),
                    ("timed_out", Json::from(r.timed_out)),
                    ("hedges", Json::from(r.hedges)),
                    ("hedge_wins", Json::from(r.hedge_wins)),
                    ("goodput_qps", Json::from(r.goodput_qps)),
                    ("achieved_qps", Json::from(r.achieved_qps)),
                    ("p50_ms", Json::from(r.p50_ms)),
                    ("p99_ms", Json::from(r.p99_ms)),
                ]));
            }
        }
    }
    println!("{}", runtime_table.render());
    println!("Runtime note: the ladder is open-loop (arrivals never slow down for");
    println!("completions), so offered QPS past the service capacity *must* shed —");
    println!("the queue depth and deadline convert unbounded queueing into a bounded");
    println!("p99 plus an explicit shed rate, and goodput plateaus at saturation.\n");

    // -- Delta publish vs full rebuild (largest rung) ---------------------
    // The paper's corpus churns daily while queries keep flowing; a delta
    // publish updates only the ad-side postings the churn touches instead
    // of re-running the whole O(keys × ads) neighbour build. Rankings are
    // property-tested bit-identical to the full rebuild, so the wall
    // clock below is the entire trade.
    println!("== Delta publish vs full rebuild (largest rung, ~10% daily churn) ==\n");
    let ad_ids: Vec<u32> = inputs.ads_qa.ids().to_vec();
    let churn = (ad_ids.len() / 20).max(1);
    // generation 1 serves the corpus minus a 5% hold-out; the delta adds
    // the hold-out back and retires 5% of the generation-1 ads
    let held_out: Vec<u32> = ad_ids.iter().rev().take(churn).copied().collect();
    let retired: Vec<u32> = ad_ids.iter().take(churn).copied().collect();
    let mut gen1_inputs = inputs.clone();
    gen1_inputs.ads_qa.retire(|id| held_out.contains(&id));
    gen1_inputs.ads_ia.retire(|id| held_out.contains(&id));
    let delta = IndexDelta {
        added_ads_qa: inputs.ads_qa.filtered(|id| held_out.contains(&id)),
        added_ads_ia: inputs.ads_ia.filtered(|id| held_out.contains(&id)),
        retired_ads: retired,
    };
    let mut delta_table = TextTable::new(vec![
        "Shards",
        "Corpus (ads)",
        "Churn (ads)",
        "Delta publish (s)",
        "Full rebuild (s)",
        "Speedup",
    ]);
    let mut delta_json: Vec<Json> = Vec::new();
    for shards in [1usize, 2, 4] {
        let topology = || {
            ShardedEngine::builder()
                .shards(shards)
                .top_k(20)
                .threads(1)
                .build_threads(1)
        };
        let mut builder = ShardedDeltaBuilder::new(&gen1_inputs, topology())
            .expect("ladder inputs always seed a valid delta builder");
        let handle = EngineHandle::new(builder.engine().expect("generation 1 serves"));
        let start = Instant::now();
        let generation = handle
            .publish_delta(&mut builder, &delta)
            .expect("the churn delta is valid");
        let delta_secs = start.elapsed().as_secs_f64();
        assert_eq!(generation, 2, "the delta publish bumps the generation");
        // the same post-delta corpus, rebuilt from scratch
        let mut post = gen1_inputs.clone();
        delta.apply_to(&mut post);
        let start = Instant::now();
        let rebuilt = topology()
            .build(&post)
            .expect("the post-delta corpus rebuilds");
        let full_secs = start.elapsed().as_secs_f64();
        assert!(rebuilt.active_shards() > 0);
        assert!(
            delta_secs < full_secs,
            "the delta publish ({delta_secs:.3}s) must beat the full rebuild ({full_secs:.3}s)"
        );
        delta_table.row(vec![
            shards.to_string(),
            post.ads_qa.len().to_string(),
            (churn * 2).to_string(),
            format!("{delta_secs:.3}"),
            format!("{full_secs:.3}"),
            format!("{:.1}x", full_secs / delta_secs.max(1e-9)),
        ]);
        delta_json.push(Json::obj(vec![
            ("shards", Json::from(shards)),
            ("corpus_ads", Json::from(post.ads_qa.len())),
            ("churn_ads", Json::from(churn * 2)),
            ("delta_publish_s", Json::from(delta_secs)),
            ("full_rebuild_s", Json::from(full_secs)),
            ("speedup", Json::from(full_secs / delta_secs.max(1e-9))),
        ]));
    }
    println!("{}", delta_table.render());
    println!("Delta note: the publish touches only the shards the churned ads hash to —");
    println!("untouched shards keep their Arc'd indices pointer-identical across the");
    println!("generation swap — and delta-built rankings equal a from-scratch rebuild");
    println!("of the post-delta corpus exactly (property-tested at shards 1/2/4).\n");

    // -- Warm restart from a snapshot vs cold rebuild ---------------------
    // A restart at corpus scale otherwise re-runs the full O(keys × ads)
    // neighbour build; the snapshot store turns it into file I/O plus
    // engine assembly. Both paths end at the same generation serving the
    // same bytes (property-tested in amcad-retrieval), so wall clock and
    // file size are the entire story.
    println!("== Warm restart from snapshot vs cold rebuild (largest rung) ==\n");
    let mut restart_table = TextTable::new(vec![
        "Shards",
        "Cold build (s)",
        "Save (s)",
        "Snapshot (KiB)",
        "Warm restart (s)",
        "Speedup",
    ]);
    let mut restart_json: Vec<Json> = Vec::new();
    for shards in [1usize, 2, 4] {
        let topology = || {
            ShardedEngine::builder()
                .shards(shards)
                .top_k(20)
                .threads(1)
                .build_threads(1)
        };
        let start = Instant::now();
        let builder = ShardedDeltaBuilder::new(&inputs, topology())
            .expect("ladder inputs always seed a valid delta builder");
        let handle = EngineHandle::new(builder.engine().expect("the cold build serves"));
        let cold_secs = start.elapsed().as_secs_f64();
        let snap_path =
            std::env::temp_dir().join(format!("amcad-table9-{}-{shards}.snap", std::process::id()));
        let start = Instant::now();
        handle
            .save_snapshot(&builder, &snap_path)
            .expect("the snapshot writes");
        let save_secs = start.elapsed().as_secs_f64();
        let snap_bytes = std::fs::metadata(&snap_path).map_or(0, |m| m.len());
        let start = Instant::now();
        let (warm, _warm_builder) =
            EngineHandle::load(&snap_path).expect("the snapshot loads back");
        let warm_secs = start.elapsed().as_secs_f64();
        assert_eq!(warm.generation(), handle.generation());
        let probe = Request {
            query: requests[0].query,
            preclick_items: requests[0].preclick_items.clone(),
        };
        assert_eq!(
            warm.retrieve(&probe).expect("the restored engine serves"),
            handle.retrieve(&probe).expect("the cold engine serves"),
            "warm restart must serve identically to the cold build"
        );
        assert!(
            warm_secs < cold_secs,
            "warm restart ({warm_secs:.3}s) must beat the cold rebuild ({cold_secs:.3}s)"
        );
        let _ = std::fs::remove_file(&snap_path);
        restart_table.row(vec![
            shards.to_string(),
            format!("{cold_secs:.3}"),
            format!("{save_secs:.3}"),
            format!("{:.1}", snap_bytes as f64 / 1024.0),
            format!("{warm_secs:.3}"),
            format!("{:.1}x", cold_secs / warm_secs.max(1e-9)),
        ]);
        restart_json.push(Json::obj(vec![
            ("shards", Json::from(shards)),
            ("cold_build_s", Json::from(cold_secs)),
            ("save_s", Json::from(save_secs)),
            ("snapshot_bytes", Json::from(snap_bytes)),
            ("warm_restart_s", Json::from(warm_secs)),
            ("speedup", Json::from(cold_secs / warm_secs.max(1e-9))),
        ]));
    }
    println!("{}", restart_table.render());
    println!("Restart note: the snapshot stores the key-side state once per deployment and");
    println!("each shard's ad slices; loading re-establishes the Arc sharing and skips the");
    println!("neighbour build, so the restored process resumes at the saved generation and");
    println!("catches up on newer deltas through the ordinary publish path.\n");

    // -- Ad-side memory footprint: quantised vs full-precision ------------
    // The quantised-postings subsystem keeps one u8 code plus one f32
    // weight per manifold component per ad instead of f64 coordinates —
    // the memory term that decides how many ads fit a serving replica.
    // The ratio is a structural property of the layout (not a sampled
    // timing), so the CI gate can pin it exactly.
    println!("== Ad-side memory footprint: quantised vs full-precision (largest rung) ==\n");
    let quant_index = QuantIndex::build(inputs.ads_qa.clone(), QuantConfig::default());
    let quantised_bpa = quant_index.quantised_bytes_per_ad();
    let full_bpa = quant_index.full_precision_bytes_per_ad();
    let ratio = full_bpa as f64 / quantised_bpa.max(1) as f64;
    let mut footprint = TextTable::new(vec![
        "Ads",
        "Quantised (B/ad)",
        "Full precision (B/ad)",
        "Ratio",
    ]);
    footprint.row(vec![
        inputs.ads_qa.len().to_string(),
        quantised_bpa.to_string(),
        full_bpa.to_string(),
        format!("{ratio:.1}x"),
    ]);
    println!("{}", footprint.render());
    assert!(
        ratio >= 4.0,
        "quantised codes must be at least 4x smaller than full-precision \
         coordinates, got {ratio:.2}x ({quantised_bpa} vs {full_bpa} bytes/ad)"
    );
    println!("Footprint note: codes replace the per-ad coordinates in the approximate scan;");
    println!("the exact rerank touches full-precision points for only rerank_k candidates");
    println!("per query, so the working set shrinks by the ratio above while served");
    println!("rankings stay pinned to the exact backend by the corpus-wide-rerank tests.\n");

    let json_path = write_bench_json(
        "table9",
        &Json::obj(vec![
            ("bench", Json::from("table9_scalability")),
            ("scale", Json::from(scale.label())),
            ("ladder", Json::Arr(ladder_json)),
            ("frontier", Json::Arr(frontier_json)),
            ("parallel_build", Json::Arr(build_json)),
            ("serving_topologies", Json::Arr(topology_json)),
            ("runtime_ladder", Json::Arr(runtime_json)),
            ("delta_vs_rebuild", Json::Arr(delta_json)),
            ("warm_restart", Json::Arr(restart_json)),
            (
                "memory_footprint",
                Json::obj(vec![
                    ("ads", Json::from(inputs.ads_qa.len())),
                    ("quantised_bytes_per_ad", Json::from(quantised_bpa)),
                    ("full_precision_bytes_per_ad", Json::from(full_bpa)),
                    ("ratio", Json::from(ratio)),
                ]),
            ),
        ]),
    )
    .expect("the bench artefact writes");
    println!("Machine-readable artefact: {}\n", json_path.display());

    println!("Paper (Table IX): 0.5h → 6.2h → 17.3h → 35h for 0.18B → 5.3B → 16.1B → 30.8B edges.");
    println!("Shape to check: training runtime grows close to linearly with the number of edges /");
    println!(
        "iterations, and the exact index build grows quadratically with candidate-set size while"
    );
    println!("IVF probes only a fraction of each candidate set per key.");
}
