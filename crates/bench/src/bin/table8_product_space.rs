//! Table VIII — fixed product-space combinations versus adaptive AMCAD.
//!
//! Trains every two-subspace fixed-curvature product space (H×H, H×E, H×S,
//! E×E, E×S, S×S), the U×U product without adaptivity extras, and full
//! AMCAD (U×U with edge projection + attentive combination), reporting
//! Next AUC, HitRate@100 and nDCG@100 — the paper's argument that the
//! adaptive unified manifold converges to (or beats) the best hand-picked
//! combination.

use amcad_bench::{train_and_eval_amcad, Scale};
use amcad_datagen::Dataset;
use amcad_eval::TextTable;
use amcad_manifold::SpaceKind;
use amcad_model::AmcadConfig;

fn main() {
    let scale = Scale::from_env();
    let seed = 20220808;
    println!(
        "== Table VIII: product-space combinations vs AMCAD (scale = {}) ==\n",
        scale.label()
    );

    let dataset = Dataset::generate(&scale.world(seed));
    let trainer = scale.trainer(seed);
    let eval = scale.eval(seed);
    let fd = scale.feature_dim();

    use SpaceKind::*;
    let combos: Vec<(&str, [SpaceKind; 2])> = vec![
        ("Product H x H", [Hyperbolic, Hyperbolic]),
        ("Product H x E", [Hyperbolic, Euclidean]),
        ("Product H x S", [Hyperbolic, Spherical]),
        ("Product E x E", [Euclidean, Euclidean]),
        ("Product E x S", [Euclidean, Spherical]),
        ("Product S x S", [Spherical, Spherical]),
        ("Product U x U", [Unified, Unified]),
    ];

    let mut table = TextTable::new(vec![
        "Model",
        "Subspace",
        "NextAUC",
        "Q2A HR@100",
        "Q2A nDCG@100",
    ]);
    let mut best_product = f64::NEG_INFINITY;
    for (label, kinds) in combos {
        let cfg = AmcadConfig::product_space(&kinds, fd, seed);
        let r = train_and_eval_amcad(cfg, &dataset, trainer, &eval);
        best_product = best_product.max(r.metrics.next_auc);
        table.row(vec![
            "Product".to_string(),
            label.trim_start_matches("Product ").to_string(),
            format!("{:.3}", r.metrics.next_auc),
            format!("{:.3}", r.metrics.q2a.hitrate[1]),
            format!("{:.3}", r.metrics.q2a.ndcg[1]),
        ]);
        eprintln!("done: {label}");
    }
    let amcad = train_and_eval_amcad(AmcadConfig::amcad(fd, seed), &dataset, trainer, &eval);
    table.row(vec![
        "AMCAD".to_string(),
        "U x U (adaptive)".to_string(),
        format!("{:.3}", amcad.metrics.next_auc),
        format!("{:.3}", amcad.metrics.q2a.hitrate[1]),
        format!("{:.3}", amcad.metrics.q2a.ndcg[1]),
    ]);
    println!("{}", table.render());
    println!("Best fixed product-space Next AUC: {best_product:.3}");
    println!(
        "AMCAD (adaptive U x U)  Next AUC: {:.3}",
        amcad.metrics.next_auc
    );
    println!(
        "Shape to check against the paper's Table VIII: AMCAD beats every fixed combination, and"
    );
    println!("mixed-sign combinations (e.g. H x S) beat the flat E x E combination.");
}
