//! CI bench regression gate — compare a fresh `BENCH_table9.json` against
//! the committed baseline and exit non-zero on regressions.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json>
//! ```
//!
//! The policy lives (unit-tested) in `amcad_bench::gate`: recall and the
//! quantised memory footprint are pinned with a small absolute tolerance
//! (both are deterministic at a fixed scale and seed), tail latency only
//! fails on an order-of-magnitude blow-up so runner speed differences
//! never flake the gate. Re-baselining is deliberate and visible: re-run
//! `table9_scalability` at the baseline's scale and commit the new file.

use std::process::ExitCode;

use amcad_bench::gate::{compare, GateConfig};
use amcad_bench::json::Json;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("bench gate: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let config = GateConfig::default();
    let violations = compare(&baseline, &fresh, &config);
    if violations.is_empty() {
        println!(
            "bench gate: PASS — {fresh_path} holds the line against {baseline_path} \
             (recall tol {:.3}, latency bound {:.0}x, footprint >= {:.0}x)",
            config.recall_abs_tol, config.latency_ratio_max, config.min_footprint_ratio
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench gate: FAIL — {} violation(s) against {baseline_path}:",
            violations.len()
        );
        for v in &violations {
            eprintln!("  - {v}");
        }
        eprintln!(
            "If this change is intentional, re-run table9_scalability at the baseline \
             scale and commit the refreshed baseline."
        );
        ExitCode::FAILURE
    }
}
