//! Fig. 7 — query-embedding visualisation in a 2-subspace (hyperbolic +
//! spherical) model.
//!
//! The paper trains a toy model with two 2-dimensional subspaces and plots
//! the query embeddings: broad queries sit near the origin of the hyperbolic
//! subspace (hierarchy), queries of one leaf category form a ring in the
//! spherical subspace (cycles), and the average attention weight of the
//! hyperbolic subspace exceeds the spherical one for Q2Q relations.
//!
//! This binary trains the same toy configuration, writes the per-subspace
//! 2-D coordinates to TSV files (for plotting), and prints the quantitative
//! checks: mean origin-distance per query level in the hyperbolic subspace
//! and the mean attention weights.

use std::fs;
use std::path::Path;

use amcad_bench::Scale;
use amcad_datagen::Dataset;
use amcad_eval::TextTable;
use amcad_graph::NodeType;
use amcad_manifold::SpaceKind;
use amcad_model::{AmcadConfig, AmcadModel, RelationKind, SubspaceCfg, Trainer};

fn main() {
    let scale = Scale::from_env();
    let seed = 20220909;
    println!(
        "== Fig. 7: query embedding visualisation (scale = {}) ==\n",
        scale.label()
    );

    let dataset = Dataset::generate(&scale.world(seed));
    // Toy configuration: one hyperbolic and one spherical subspace of
    // dimension 2 each (id 1 + category 0.5 + term 0.5 rounds to 1/1/... so
    // build the dims explicitly).
    let mut cfg = AmcadConfig::amcad(2, seed);
    cfg.name = "AMCAD (2x2-dim H+S toy)".into();
    cfg.id_dim = 1;
    cfg.category_dim = 1;
    cfg.term_dim = 0;
    cfg.subspaces = vec![
        SubspaceCfg::fixed(2, SpaceKind::Hyperbolic),
        SubspaceCfg::fixed(2, SpaceKind::Spherical),
    ];
    cfg.optimizer.learning_rate = 0.05;
    cfg.optimizer.warmup_steps = 10;

    let mut model = AmcadModel::new(cfg, &dataset.graph);
    let trainer = Trainer::new(scale.trainer(seed));
    trainer.run(&mut model, &dataset.graph);
    let export = model.export(&dataset.graph, seed);

    // --- write TSV point clouds -------------------------------------------
    let out_dir = Path::new("target/experiments");
    fs::create_dir_all(out_dir).expect("create output directory");
    let node_space = &export.node_level[&NodeType::Query];
    let mut hyp = String::from("query\tlevel\tcategory\tx\ty\n");
    let mut sph = String::from("query\tlevel\tcategory\tx\ty\n");
    for (idx, &node) in dataset.query_nodes.iter().enumerate() {
        let q = &dataset.world.queries[idx];
        if let Some(coords) = node_space.points.get(&node) {
            hyp.push_str(&format!(
                "{}\t{}\t{}\t{:.6}\t{:.6}\n",
                node.0, q.level, q.category, coords[0], coords[1]
            ));
            sph.push_str(&format!(
                "{}\t{}\t{}\t{:.6}\t{:.6}\n",
                node.0, q.level, q.category, coords[2], coords[3]
            ));
        }
    }
    fs::write(out_dir.join("fig7_hyperbolic_subspace.tsv"), hyp).unwrap();
    fs::write(out_dir.join("fig7_spherical_subspace.tsv"), sph).unwrap();
    println!("point clouds written to target/experiments/fig7_*.tsv\n");

    // --- quantitative checks ------------------------------------------------
    // 1. hierarchy: broader queries (lower level) should sit closer to the
    //    origin of the hyperbolic subspace.
    let manifold = &node_space.manifold;
    let mut dist_by_level = [Vec::new(), Vec::new(), Vec::new()];
    for (idx, &node) in dataset.query_nodes.iter().enumerate() {
        let q = &dataset.world.queries[idx];
        if let Some(coords) = node_space.points.get(&node) {
            let sub = manifold.component(coords, 0);
            let zero = vec![0.0; sub.len()];
            let d = amcad_manifold::distance(&zero, sub, manifold.subspaces()[0].kappa);
            dist_by_level[q.level.min(2) as usize].push(d);
        }
    }
    let mut table = TextTable::new(vec![
        "Query level",
        "#queries",
        "Mean hyperbolic origin distance",
    ]);
    for (level, dists) in dist_by_level.iter().enumerate() {
        table.row(vec![
            format!("{level}"),
            dists.len().to_string(),
            format!("{:.4}", amcad_eval::mean(dists)),
        ]);
    }
    println!("{}", table.render());

    // 2. attention: average subspace weight of queries in the Q2Q space.
    let qq = &export.spaces[&RelationKind::QueryQuery];
    let mut w_hyp = Vec::new();
    let mut w_sph = Vec::new();
    for w in qq.weights.values() {
        w_hyp.push(w[0]);
        w_sph.push(w[1]);
    }
    println!(
        "Mean Q2Q attention weight: hyperbolic subspace = {:.3}, spherical subspace = {:.3}",
        amcad_eval::mean(&w_hyp),
        amcad_eval::mean(&w_sph)
    );
    println!(
        "\nShape to check against the paper's Fig. 7: broad (level-0) queries lie closest to the"
    );
    println!(
        "hyperbolic origin with distance increasing by level, and the hyperbolic subspace carries"
    );
    println!("at least comparable attention weight to the spherical one for Q2Q relations.");
}
