//! A minimal JSON emitter *and parser* for machine-readable bench
//! artefacts.
//!
//! The experiment binaries render human-readable text tables *and* write
//! the same numbers as `BENCH_<name>.json` so CI (and notebooks) can
//! diff runs without scraping stdout. The workspace's `serde` is a
//! deliberate no-op stub, so this is a small hand-rolled tree: build a
//! [`Json`] value, [`write_bench_json`] it. Output is pretty-printed,
//! keys stay in insertion order, and non-finite floats render as `null`
//! (JSON has no NaN/∞). [`Json::parse`] reads an artefact back — the
//! bench regression gate diffs a fresh run against a committed baseline
//! through it — and the accessors ([`Json::get`], [`Json::as_f64`], …)
//! walk the parsed tree without pattern-matching at every call site.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A JSON value. Construct via the `From` impls and [`Json::obj`] /
/// [`Json::arr`], or parse one back with [`Json::parse`]; object keys
/// keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A float, rendered with a decimal point (`3.0`, not `3`).
    Num(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl Json {
    /// An object from `(key, value)` pairs, keys kept in order.
    pub fn obj(pairs: Vec<(&'static str, impl Into<Json>)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.into()))
                .collect(),
        )
    }

    /// An array from anything convertible to values.
    pub fn arr(items: Vec<impl Into<Json>>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Pretty-printed JSON text (two-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // {:?} gives the shortest representation that parses
                    // back to the same f64, always with a decimal point
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse JSON text into a tree, or a message naming the byte offset
    /// where parsing stopped. Numbers without a fraction or exponent
    /// parse as [`Json::Int`], everything else numeric as [`Json::Num`],
    /// so a render → parse round trip reproduces the tree exactly.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of an `Int` or `Num`; `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(f) => Some(*f),
            _ => None,
        }
    }

    /// The value of an `Int`; `None` otherwise (floats do not truncate).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The borrowed contents of a `Str`; `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The borrowed items of an `Arr`; `None` otherwise.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// The recursive-descent state behind [`Json::parse`]: a byte cursor,
/// because every structural character in JSON is ASCII (string contents
/// pass through as validated UTF-8 slices).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            // the unescaped stretch is a slice of the input, which is
            // valid UTF-8 and never split mid-character (both stop
            // bytes are ASCII)
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let code = self
                        .peek()
                        .ok_or_else(|| "unterminated escape at end of input".to_string())?;
                    self.pos += 1;
                    match code {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| {
                                format!("bad \\u escape '{hex}' at byte {}", self.pos)
                            })?;
                            self.pos += 4;
                            // the emitter only writes \u for control
                            // characters; surrogate pairs land here as
                            // the replacement character rather than a
                            // parse failure
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!(
                                "unknown escape '\\{}' at byte {}",
                                other as char,
                                self.pos - 1
                            ))
                        }
                    }
                }
                // the scan loop above only stops on '"', '\\' or end of
                // input, so anything else is unreachable
                _ => return Err("unterminated string at end of input".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("a number is built from ASCII bytes only");
        if fractional {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{text}' at byte {start}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number '{text}' at byte {start}"))
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write a bench artefact as `BENCH_<name>.json` into the directory named
/// by `AMCAD_BENCH_OUT` (default: the current directory) and return the
/// path. CI uploads these files as run artefacts.
pub fn write_bench_json(name: &str, json: &Json) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(std::env::var("AMCAD_BENCH_OUT").unwrap_or_else(|_| ".".to_string()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json.render())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_render_as_valid_json_with_ordered_keys() {
        let json = Json::obj(vec![
            ("name", Json::from("table9")),
            (
                "rows",
                Json::Arr(vec![Json::obj(vec![
                    ("shards", Json::from(4usize)),
                    ("speedup", Json::from(2.5)),
                    ("exact", Json::from(true)),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
            ("none", Json::Null),
        ]);
        let text = json.render();
        assert_eq!(
            text,
            "{\n  \"name\": \"table9\",\n  \"rows\": [\n    {\n      \"shards\": 4,\n      \"speedup\": 2.5,\n      \"exact\": true\n    }\n  ],\n  \"empty\": [],\n  \"none\": null\n}\n"
        );
    }

    #[test]
    fn floats_keep_their_decimal_point_and_non_finite_becomes_null() {
        assert_eq!(Json::from(3.0).render(), "3.0\n");
        assert_eq!(Json::from(0.1).render(), "0.1\n");
        assert_eq!(Json::from(f64::NAN).render(), "null\n");
        assert_eq!(Json::from(f64::INFINITY).render(), "null\n");
        assert_eq!(Json::from(42i64).render(), "42\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::from("a \"quoted\"\\\npath\tand \u{1} control");
        assert_eq!(
            s.render(),
            "\"a \\\"quoted\\\"\\\\\\npath\\tand \\u0001 control\"\n"
        );
    }

    #[test]
    fn render_then_parse_round_trips_the_tree_exactly() {
        let json = Json::obj(vec![
            ("bench", Json::from("table9")),
            (
                "frontier",
                Json::Arr(vec![Json::obj(vec![
                    ("backend", Json::from("hnsw")),
                    ("recall_at_20", Json::from(0.875)),
                    ("p99_ms", Json::from(1.25e-3)),
                    ("shards", Json::from(4usize)),
                    ("negative", Json::from(-17i64)),
                    ("exact", Json::from(false)),
                    ("nan_becomes", Json::from(f64::NAN)),
                ])]),
            ),
            ("escaped", Json::from("a \"q\"\\\n\t\u{1} tail")),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let reparsed = Json::parse(&json.render()).expect("the emitter writes valid JSON");
        // NaN renders as null, so patch that one field before comparing
        let mut expected = json;
        if let Json::Obj(pairs) = &mut expected {
            if let Some(Json::Arr(rows)) = pairs
                .iter_mut()
                .find(|(k, _)| k == "frontier")
                .map(|(_, v)| v)
            {
                if let Some(Json::Obj(row)) = rows.first_mut() {
                    row.iter_mut()
                        .find(|(k, _)| k == "nan_becomes")
                        .expect("the fixture has the field")
                        .1 = Json::Null;
                }
            }
        }
        assert_eq!(reparsed, expected);
    }

    #[test]
    fn accessors_walk_parsed_trees() {
        let doc = Json::parse("{\"a\": [1, 2.5, \"x\"], \"b\": {\"c\": 7}}").unwrap();
        assert_eq!(
            doc.get("b").and_then(|b| b.get("c")).and_then(Json::as_i64),
            Some(7)
        );
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[1].as_i64(), None, "floats must not truncate to ints");
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(arr[2].get("a"), None, "get on a non-object is None");
    }

    #[test]
    fn hostile_text_is_a_typed_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\" 1}",
            "{\"a\": 1,}",
            "tru",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"trunc \\u00",
            "1e",
            "-",
            "01x",
            "[1] trailing",
            "{\"a\": 1} {}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // surrogate escapes degrade to the replacement character
        assert_eq!(
            Json::parse("\"\\ud800\"").unwrap(),
            Json::Str("\u{fffd}".to_string())
        );
    }
}
