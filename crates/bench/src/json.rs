//! A minimal JSON emitter for machine-readable bench artefacts.
//!
//! The experiment binaries render human-readable text tables *and* write
//! the same numbers as `BENCH_<name>.json` so CI (and notebooks) can
//! diff runs without scraping stdout. The workspace's `serde` is a
//! deliberate no-op stub, so this is a small hand-rolled tree: build a
//! [`Json`] value, [`write_bench_json`] it. Output is pretty-printed,
//! keys stay in insertion order, and non-finite floats render as `null`
//! (JSON has no NaN/∞).

use std::fmt::Write as _;
use std::path::PathBuf;

/// A JSON value. Construct via the `From` impls and [`Json::obj`] /
/// [`Json::arr`]; object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A float, rendered with a decimal point (`3.0`, not `3`).
    Num(f64),
    /// A string, escaped on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(&'static str, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl Json {
    /// An object from `(key, value)` pairs, keys kept in order.
    pub fn obj(pairs: Vec<(&'static str, impl Into<Json>)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k, v.into())).collect())
    }

    /// An array from anything convertible to values.
    pub fn arr(items: Vec<impl Into<Json>>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Pretty-printed JSON text (two-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(f) => {
                if f.is_finite() {
                    // {:?} gives the shortest representation that parses
                    // back to the same f64, always with a decimal point
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Write a bench artefact as `BENCH_<name>.json` into the directory named
/// by `AMCAD_BENCH_OUT` (default: the current directory) and return the
/// path. CI uploads these files as run artefacts.
pub fn write_bench_json(name: &str, json: &Json) -> std::io::Result<PathBuf> {
    let dir = PathBuf::from(std::env::var("AMCAD_BENCH_OUT").unwrap_or_else(|_| ".".to_string()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json.render())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_render_as_valid_json_with_ordered_keys() {
        let json = Json::obj(vec![
            ("name", Json::from("table9")),
            (
                "rows",
                Json::Arr(vec![Json::obj(vec![
                    ("shards", Json::from(4usize)),
                    ("speedup", Json::from(2.5)),
                    ("exact", Json::from(true)),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
            ("none", Json::Null),
        ]);
        let text = json.render();
        assert_eq!(
            text,
            "{\n  \"name\": \"table9\",\n  \"rows\": [\n    {\n      \"shards\": 4,\n      \"speedup\": 2.5,\n      \"exact\": true\n    }\n  ],\n  \"empty\": [],\n  \"none\": null\n}\n"
        );
    }

    #[test]
    fn floats_keep_their_decimal_point_and_non_finite_becomes_null() {
        assert_eq!(Json::from(3.0).render(), "3.0\n");
        assert_eq!(Json::from(0.1).render(), "0.1\n");
        assert_eq!(Json::from(f64::NAN).render(), "null\n");
        assert_eq!(Json::from(f64::INFINITY).render(), "null\n");
        assert_eq!(Json::from(42i64).render(), "42\n");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::from("a \"quoted\"\\\npath\tand \u{1} control");
        assert_eq!(
            s.render(),
            "\"a \\\"quoted\\\"\\\\\\npath\\tand \\u0001 control\"\n"
        );
    }
}
