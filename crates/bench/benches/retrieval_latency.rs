//! Criterion benchmark of single-request two-layer retrieval latency — the
//! per-request cost underlying the Fig. 9 serving curve.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use amcad_core::{Pipeline, PipelineConfig};
use amcad_retrieval::Request;

fn bench_retrieval(c: &mut Criterion) {
    let result = Pipeline::new(PipelineConfig::small(99)).run();
    let session = result
        .dataset
        .eval_sessions
        .iter()
        .find(|s| !s.clicks.is_empty())
        .expect("at least one evaluation session")
        .clone();
    let preclicks: Vec<u32> = result
        .dataset
        .preclick_items(&session)
        .iter()
        .map(|n| n.0)
        .collect();
    let query = session.query.0;
    let request = Request {
        query,
        preclick_items: preclicks,
    };
    let batch: Vec<Request> = std::iter::repeat_n(request.clone(), 8).collect();

    c.bench_function("retrieval/two_layer_single_request", |b| {
        b.iter(|| black_box(result.engine.retrieve(black_box(&request))))
    });
    c.bench_function("retrieval/two_layer_batch_8", |b| {
        b.iter(|| black_box(result.engine.retrieve_batch(black_box(&batch))))
    });
    c.bench_function("retrieval/single_layer_single_request", |b| {
        b.iter(|| black_box(result.engine.retrieve_single_layer(black_box(query))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_retrieval
}
criterion_main!(benches);
