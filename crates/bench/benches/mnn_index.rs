//! Criterion benchmarks of MNN inverted-index construction: exact scan with
//! 1 vs 4 threads (the paper's data-level parallelism claim) and the IVF
//! and HNSW approximate indices.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use amcad_manifold::{ProductManifold, SubspaceSpec};
use amcad_mnn::{build_exact_index, HnswConfig, HnswIndex, IvfConfig, IvfIndex, MixedPointSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_set(n: usize, dim_per_space: usize, seed: u64) -> MixedPointSet {
    let manifold = ProductManifold::new(vec![
        SubspaceSpec::new(dim_per_space, -1.0),
        SubspaceSpec::new(dim_per_space, 1.0),
    ]);
    let mut set = MixedPointSet::new(manifold.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let tangent: Vec<f64> = (0..2 * dim_per_space)
            .map(|_| rng.gen_range(-0.3..0.3))
            .collect();
        let w: f64 = rng.gen_range(0.2..0.8);
        set.push(i as u32, &manifold.exp0(&tangent), &[w, 1.0 - w]);
    }
    set
}

fn bench_mnn(c: &mut Criterion) {
    let keys = random_set(200, 8, 1);
    let candidates = random_set(1_000, 8, 2);

    let mut group = c.benchmark_group("mnn_index_build");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_function(format!("exact_200x1000_top20/threads={threads}"), |b| {
            b.iter(|| {
                black_box(build_exact_index(
                    black_box(&keys),
                    black_box(&candidates),
                    20,
                    false,
                    threads,
                ))
            })
        });
    }
    group.bench_function("ivf_build_1000", |b| {
        b.iter(|| black_box(IvfIndex::build(candidates.clone(), IvfConfig::default())))
    });
    let ivf = IvfIndex::build(candidates.clone(), IvfConfig::default());
    group.bench_function("ivf_search_200_keys_top20", |b| {
        b.iter(|| black_box(ivf.build_index(&keys, 20, false)))
    });
    group.bench_function("hnsw_build_1000", |b| {
        b.iter(|| black_box(HnswIndex::build(candidates.clone(), HnswConfig::default())))
    });
    let hnsw = HnswIndex::build(candidates.clone(), HnswConfig::default());
    group.bench_function("hnsw_search_200_keys_top20", |b| {
        b.iter(|| black_box(hnsw.build_index(&keys, 20, false)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mnn
}
criterion_main!(benches);
