//! Criterion micro-benchmarks of the κ-stereographic primitives that
//! dominate both training (autodiff composites) and serving (MNN distance
//! computations).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use amcad_manifold::{
    distance, exp_map_origin, log_map_origin, mobius_add, ProductManifold, SubspaceSpec,
};

fn bench_manifold(c: &mut Criterion) {
    let dim = 32;
    let x: Vec<f64> = (0..dim).map(|i| 0.01 * (i as f64 % 7.0) - 0.03).collect();
    let y: Vec<f64> = (0..dim).map(|i| 0.02 * (i as f64 % 5.0) - 0.04).collect();

    let mut group = c.benchmark_group("manifold");
    for &kappa in &[-1.0, 0.0, 1.0] {
        group.bench_function(format!("mobius_add/kappa={kappa}"), |b| {
            b.iter(|| mobius_add(black_box(&x), black_box(&y), black_box(kappa)))
        });
        group.bench_function(format!("distance/kappa={kappa}"), |b| {
            b.iter(|| distance(black_box(&x), black_box(&y), black_box(kappa)))
        });
        group.bench_function(format!("exp_log_roundtrip/kappa={kappa}"), |b| {
            b.iter(|| {
                let p = exp_map_origin(black_box(&x), kappa);
                log_map_origin(&p, kappa)
            })
        });
    }
    group.finish();

    let manifold = ProductManifold::new(vec![
        SubspaceSpec::new(16, -1.0),
        SubspaceSpec::new(16, 1.0),
    ]);
    let px = manifold.exp0(&x);
    let py = manifold.exp0(&y);
    let weights = [0.6, 0.4];
    c.bench_function("product_manifold/weighted_distance_32d", |b| {
        b.iter(|| manifold.weighted_distance(black_box(&px), black_box(&py), black_box(&weights)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_manifold
}
criterion_main!(benches);
