//! Criterion benchmark of one AMCAD training step (tape construction,
//! forward pass, backward pass and AdaGrad update) and of the underlying
//! autodiff distance composite.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use amcad_autodiff::manifold_ops as mops;
use amcad_autodiff::Tape;
use amcad_datagen::{Dataset, WorldConfig};
use amcad_graph::{MetaPathSampler, SamplerConfig};
use amcad_model::{AmcadConfig, AmcadModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_training(c: &mut Criterion) {
    let dataset = Dataset::generate(&WorldConfig::tiny(77));
    let sampler = MetaPathSampler::new(&dataset.graph, SamplerConfig::default());
    let mut rng = StdRng::seed_from_u64(77);
    let batch = sampler.sample_batch(8, &mut rng);

    c.bench_function("train_step/amcad_batch8", |b| {
        let mut model = AmcadModel::new(AmcadConfig::test_tiny(77), &dataset.graph);
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            black_box(model.train_step(&dataset.graph, &batch, step))
        })
    });

    c.bench_function("train_step/euclidean_batch8", |b| {
        let mut model = AmcadModel::new(AmcadConfig::euclidean(4, 77), &dataset.graph);
        let mut step = 0u64;
        b.iter(|| {
            step += 1;
            black_box(model.train_step(&dataset.graph, &batch, step))
        })
    });

    c.bench_function("autodiff/geodesic_distance_backward_16d", |b| {
        let xs: Vec<f64> = (0..16).map(|i| 0.01 * i as f64).collect();
        let ys: Vec<f64> = (0..16).map(|i| -0.008 * i as f64).collect();
        b.iter(|| {
            let mut tape = Tape::new();
            let x = tape.row(xs.clone());
            let y = tape.row(ys.clone());
            let k = tape.scalar(-0.7);
            let d = mops::distance(&mut tape, x, y, k);
            black_box(tape.backward(d))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training
}
criterion_main!(benches);
