//! Backend-parity properties: the approximate backends degrade gracefully
//! from "identical to exact" (full probing / saturated graphs) to "high
//! recall" (partial probing / narrow beams), and the HNSW graph built
//! incrementally is the graph built in bulk.

use amcad_manifold::{ProductManifold, SubspaceSpec};
use amcad_mnn::{
    recall_at_k, AnnIndex, ExactBackend, HnswConfig, IndexBackend, IvfConfig, MixedPointSet,
    QuantConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_set(n: usize, seed: u64) -> MixedPointSet {
    let manifold =
        ProductManifold::new(vec![SubspaceSpec::new(3, -1.0), SubspaceSpec::new(3, 1.0)]);
    let mut set = MixedPointSet::new(manifold.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let tangent: Vec<f64> = (0..6).map(|_| rng.gen_range(-0.3..0.3)).collect();
        let w0: f64 = rng.gen_range(0.2..0.8);
        set.push(i as u32, &manifold.exp0(&tangent), &[w0, 1.0 - w0]);
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// With `nprobe == num_clusters` every cluster is scanned, so the IVF
    /// backend must return posting lists identical to the exact backend
    /// (same ids, same distances) for any point set and key set.
    #[test]
    fn full_probe_ivf_equals_exact(
        seed in 0u64..1_000,
        n_cands in 20usize..120,
        n_keys in 5usize..25,
        num_clusters in 2usize..12,
        k in 1usize..8,
    ) {
        let cands = random_set(n_cands, seed);
        let keys = random_set(n_keys, seed.wrapping_add(1));

        let exact = ExactBackend::new(cands.clone(), 1).build_index(&keys, k, false);
        let ivf_backend = IndexBackend::Ivf(IvfConfig {
            num_clusters,
            kmeans_iters: 4,
            nprobe: num_clusters, // probe everything
            seed: seed ^ 0xABCD,
        })
        .instantiate(cands, 1);
        let ivf = ivf_backend.build_index(&keys, k, false);

        prop_assert_eq!(exact.len(), ivf.len());
        for (key, exact_postings) in exact.iter() {
            let ivf_postings = ivf.get(*key).expect("every key must be indexed");
            prop_assert_eq!(exact_postings.len(), ivf_postings.len());
            for (a, b) in exact_postings.iter().zip(ivf_postings) {
                prop_assert_eq!(a.0, b.0, "posting ids must match for key {}", key);
                prop_assert!((a.1 - b.1).abs() < 1e-12, "distances must match exactly");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The HNSW analogue of full probing: with `m` and both beam widths
    /// at the corpus size the graph is complete and the beam exhaustive,
    /// so posting lists must be identical to the exact backend's (same
    /// ids, same distances) for any point set and key set — with and
    /// without self-exclusion.
    #[test]
    fn saturated_hnsw_equals_exact(
        seed in 0u64..1_000,
        n_cands in 20usize..100,
        n_keys in 5usize..20,
        k in 1usize..8,
        exclude_bit in 0u32..2,
    ) {
        let exclude = exclude_bit == 1;
        let cands = random_set(n_cands, seed);
        let keys = random_set(n_keys, seed.wrapping_add(1));

        let exact = ExactBackend::new(cands.clone(), 1).build_index(&keys, k, exclude);
        let hnsw = IndexBackend::Hnsw(HnswConfig::saturated(n_cands))
            .instantiate(cands, 1)
            .build_index(&keys, k, exclude);

        prop_assert_eq!(exact.len(), hnsw.len());
        for (key, exact_postings) in exact.iter() {
            let hnsw_postings = hnsw.get(*key).expect("every key must be indexed");
            prop_assert_eq!(
                exact_postings, hnsw_postings,
                "postings (ids and distances) must match for key {}", key
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The quantised backend's saturation point: with `rerank_k` at the
    /// corpus size every candidate survives the approximate table scan
    /// into the exact rerank, so posting lists must be identical to the
    /// exact backend's (same ids, same distances, bit for bit) for any
    /// point set, key set and codebook size — with and without
    /// self-exclusion.
    #[test]
    fn corpus_wide_rerank_quant_equals_exact(
        seed in 0u64..1_000,
        n_cands in 20usize..120,
        n_keys in 5usize..25,
        ksub in 2usize..32,
        k in 1usize..8,
        exclude_bit in 0u32..2,
    ) {
        let exclude = exclude_bit == 1;
        let cands = random_set(n_cands, seed);
        let keys = random_set(n_keys, seed.wrapping_add(1));

        let exact = ExactBackend::new(cands.clone(), 1).build_index(&keys, k, exclude);
        let quant = IndexBackend::Quant(QuantConfig {
            ksub,
            train_iters: 3,
            rerank_k: n_cands, // the whole corpus reaches the exact rerank
            seed: seed ^ 0x5150,
        })
        .instantiate(cands, 1)
        .build_index(&keys, k, exclude);

        prop_assert_eq!(exact.len(), quant.len());
        for (key, exact_postings) in exact.iter() {
            let quant_postings = quant.get(*key).expect("every key must be indexed");
            prop_assert_eq!(
                exact_postings, quant_postings,
                "postings (ids and distances) must match for key {}", key
            );
        }
    }
}

/// Partial probing on a well-seeded point set keeps recall@10 high: this
/// is the quality bar that makes the IVF backend a usable serving option.
#[test]
fn partial_probe_recall_at_10_is_at_least_0_8() {
    let cands = random_set(400, 42);
    let keys = random_set(60, 43);
    let k = 10;

    let exact = ExactBackend::new(cands.clone(), 2).build_index(&keys, k, false);
    let ivf = IndexBackend::Ivf(IvfConfig {
        num_clusters: 16,
        kmeans_iters: 8,
        nprobe: 6,
        seed: 44,
    })
    .instantiate(cands, 1)
    .build_index(&keys, k, false);

    let recall = recall_at_k(&ivf, &exact, k);
    assert!(
        recall >= 0.8,
        "IVF nprobe=6/16 should keep recall@10 >= 0.8, got {recall:.3}"
    );
    assert!(recall <= 1.0 + 1e-12);
}

/// The HNSW quality bar on the same property corpus: a wide (but far from
/// saturated) beam keeps recall@10 ≥ 0.8 against the exact index.
#[test]
fn high_ef_hnsw_recall_at_10_is_at_least_0_8() {
    let cands = random_set(400, 42);
    let keys = random_set(60, 43);
    let k = 10;

    let exact = ExactBackend::new(cands.clone(), 2).build_index(&keys, k, false);
    let hnsw = IndexBackend::Hnsw(HnswConfig {
        m: 16,
        ef_construction: 100,
        ef_search: 128,
        seed: 44,
    })
    .instantiate(cands, 1)
    .build_index(&keys, k, false);

    let recall = recall_at_k(&hnsw, &exact, k);
    assert!(
        recall >= 0.8,
        "HNSW ef_search=128 should keep recall@10 >= 0.8, got {recall:.3}"
    );
    assert!(recall <= 1.0 + 1e-12);
    // exclude_id is honoured through the trait path
    let set = random_set(50, 45);
    let backend = IndexBackend::Hnsw(HnswConfig::default()).instantiate(set.clone(), 1);
    for i in 0..set.len() {
        let id = set.id(i);
        let hits = backend.search(set.point(i), set.weight(i), 5, Some(id));
        assert!(hits.iter().all(|(c, _)| *c != id));
    }
}

/// The quant quality bar on the same property corpus: the serving-default
/// `rerank_k` (48 of 400 candidates survive the table scan) keeps
/// recall@10 ≥ 0.8 against the exact index.
#[test]
fn serving_rerank_quant_recall_at_10_is_at_least_0_8() {
    let cands = random_set(400, 42);
    let keys = random_set(60, 43);
    let k = 10;

    let exact = ExactBackend::new(cands.clone(), 2).build_index(&keys, k, false);
    let quant = IndexBackend::Quant(QuantConfig::default()) // rerank_k: 48
        .instantiate(cands, 1)
        .build_index(&keys, k, false);

    let recall = recall_at_k(&quant, &exact, k);
    assert!(
        recall >= 0.8,
        "quant rerank_k=48/400 should keep recall@10 >= 0.8, got {recall:.3}"
    );
    assert!(recall <= 1.0 + 1e-12);
    // exclude_id is honoured through the trait path
    let set = random_set(50, 45);
    let backend = IndexBackend::Quant(QuantConfig::default()).instantiate(set.clone(), 1);
    for i in 0..set.len() {
        let id = set.id(i);
        let hits = backend.search(set.point(i), set.weight(i), 5, Some(id));
        assert!(hits.iter().all(|(c, _)| *c != id));
    }
}

/// The quant incremental seam: once the codebooks are trained they are
/// frozen, so *how* later points arrive — one at a time or in one batch —
/// cannot change the index. A corpus-wide rerank then pins both streamed
/// variants to the exact scan over the union.
#[test]
fn quant_insert_one_at_a_time_equals_batch_insert_and_exact() {
    let union = random_set(120, 46);
    let keys = random_set(25, 47);
    let manifold = union.manifold().clone();
    let split = 60;
    let base = {
        let mut b = MixedPointSet::new(manifold.clone());
        for i in 0..split {
            b.push(union.id(i), union.point(i), union.weight(i));
        }
        b
    };
    let config = QuantConfig {
        ksub: 8,
        train_iters: 4,
        rerank_k: 120, // corpus-wide: streamed indices must stay exact
        seed: 48,
    };
    let mut one_at_a_time = IndexBackend::Quant(config).instantiate(base.clone(), 1);
    let mut batched = IndexBackend::Quant(config).instantiate(base, 1);
    let mut batch = MixedPointSet::new(manifold.clone());
    for i in split..union.len() {
        let mut one = MixedPointSet::new(manifold.clone());
        one.push(union.id(i), union.point(i), union.weight(i));
        assert!(
            one_at_a_time.insert(&one),
            "quant must accept streaming inserts"
        );
        batch.push(union.id(i), union.point(i), union.weight(i));
    }
    assert!(batched.insert(&batch));
    assert_eq!(one_at_a_time.len(), union.len());
    assert_eq!(batched.len(), union.len());
    let exact = ExactBackend::new(union, 1);
    for i in 0..keys.len() {
        let want = exact.search(keys.point(i), keys.weight(i), 10, None);
        assert_eq!(
            one_at_a_time.search(keys.point(i), keys.weight(i), 10, None),
            want,
            "one-at-a-time streamed quant must answer exactly (key {i})"
        );
        assert_eq!(
            batched.search(keys.point(i), keys.weight(i), 10, None),
            want,
            "batch-streamed quant must answer exactly (key {i})"
        );
    }
}

/// The incremental seam: a graph grown by `insert`ing points one at a time
/// through the `AnnIndex` trait is *the same graph* a bulk build produces
/// (same deterministic level draws, same code path), so every search — not
/// just high-recall ones — returns identical results.
#[test]
fn hnsw_insert_one_at_a_time_equals_bulk_build() {
    let union = random_set(120, 46);
    let keys = random_set(25, 47);
    let config = HnswConfig {
        m: 8,
        ef_construction: 32,
        ef_search: 24,
        seed: 48,
    };
    let bulk = IndexBackend::Hnsw(config).instantiate(union.clone(), 1);
    let manifold = union.manifold().clone();
    let mut streamed =
        IndexBackend::Hnsw(config).instantiate(MixedPointSet::new(manifold.clone()), 1);
    for i in 0..union.len() {
        let mut one = MixedPointSet::new(manifold.clone());
        one.push(union.id(i), union.point(i), union.weight(i));
        assert!(streamed.insert(&one), "HNSW must accept streaming inserts");
    }
    assert_eq!(streamed.len(), bulk.len());
    for i in 0..keys.len() {
        assert_eq!(
            streamed.search(keys.point(i), keys.weight(i), 10, None),
            bulk.search(keys.point(i), keys.weight(i), 10, None),
            "streamed and bulk-built graphs must answer identically (key {i})"
        );
    }
}
