//! Exact (brute-force) top-K retrieval with data-level parallelism.
//!
//! The paper's MNN module distributes index construction over a fleet of
//! workers and parallelises the per-worker computation with OpenMP (data
//! level) and SIMD (instruction level).  Here the data-level parallelism is
//! provided by crossbeam scoped threads over key shards, and the inner
//! distance loops are simple slice arithmetic the compiler can vectorise.

use std::collections::HashMap;

use crate::points::MixedPointSet;

/// One inverted-index posting list: the K nearest candidates of a key, with
/// their mixed-curvature distances, sorted by increasing distance.
pub type Postings = Vec<(u32, f64)>;

/// An inverted index: key node id → top-K nearest candidate ids.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    entries: HashMap<u32, Postings>,
}

impl InvertedIndex {
    /// Posting list of a key, if present.
    pub fn get(&self, key: u32) -> Option<&Postings> {
        self.entries.get(&key)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(key, postings)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&u32, &Postings)> {
        self.entries.iter()
    }

    /// Insert a posting list (used by the IVF index and tests).
    pub fn insert(&mut self, key: u32, postings: Postings) {
        self.entries.insert(key, postings);
    }
}

/// Keep the `k` smallest (distance, id) pairs while scanning candidates.
#[derive(Debug)]
pub(crate) struct TopK {
    k: usize,
    heap: Vec<(f64, u32)>, // max-heap by distance (linear: k is small)
}

impl TopK {
    pub(crate) fn new(k: usize) -> Self {
        TopK {
            k,
            heap: Vec::with_capacity(k + 1),
        }
    }

    pub(crate) fn push(&mut self, distance: f64, id: u32) {
        // Normalise corrupt (NaN) distances to +inf up front: total_cmp
        // would order a sign-bit-set NaN (the hardware default for 0/0)
        // BELOW every real number, letting it head posting lists and
        // squat in the heap. As +inf it sorts last and any real distance
        // evicts it.
        let distance = if distance.is_nan() {
            f64::INFINITY
        } else {
            distance
        };
        if self.heap.len() < self.k {
            self.heap.push((distance, id));
        } else if let Some((worst_idx, worst)) = self
            .heap
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(a.1 .1.cmp(&b.1 .1)))
            .map(|(i, v)| (i, *v))
        {
            // The kept set is the k smallest by (distance, id) — the id
            // tie-break makes the result independent of candidate scan
            // order, so exact and full-probe IVF scans (which visit
            // candidates in different orders) keep identical sets even
            // when distances tie at the boundary.
            if distance.total_cmp(&worst.0).then(id.cmp(&worst.1)).is_lt() {
                self.heap[worst_idx] = (distance, id);
            }
        }
    }

    pub(crate) fn into_sorted(mut self) -> Postings {
        // total_cmp keeps the sort panic-free for any f64 (push already
        // normalised NaN distances to +inf, so they rank last)
        self.heap
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        self.heap.into_iter().map(|(d, id)| (id, d)).collect()
    }
}

/// The per-key inverted-index construction loop shared by the
/// [`crate::backend::AnnIndex`] trait default and [`crate::IvfIndex`]:
/// search every key against one `search` closure. No candidates (or
/// `k == 0`) yields an EMPTY index, not keys with empty posting lists —
/// downstream emptiness checks rely on that contract.
pub(crate) fn build_index_with(
    search: impl Fn(&[f64], &[f64], usize, Option<u32>) -> Postings,
    candidates_empty: bool,
    keys: &MixedPointSet,
    k: usize,
    exclude_same_id: bool,
) -> InvertedIndex {
    let mut index = InvertedIndex::default();
    if k == 0 || candidates_empty {
        return index;
    }
    for i in 0..keys.len() {
        let id = keys.id(i);
        let exclude = if exclude_same_id { Some(id) } else { None };
        index.insert(id, search(keys.point(i), keys.weight(i), k, exclude));
    }
    index
}

/// Candidates evaluated per chunk of the exact scan: small enough that a
/// chunk's distance lane lives on the stack, large enough that the
/// component-outer SoA loops amortise their setup. Shared with the
/// quantised backend's table scan.
pub(crate) const SCAN_CHUNK: usize = 128;

/// One exact top-K scan of a query point over a candidate set — the
/// kernel shared by the bulk builder below and the per-query
/// `ExactBackend::search` path, so the two can never diverge. The scan
/// walks the SoA component blocks in fixed-size chunks with the query's
/// Gram context and the distance lane hoisted out of the loop, so the
/// inner loops are allocation-free unit-stride dot products.
pub(crate) fn scan_top_k(
    candidates: &MixedPointSet,
    query: &[f64],
    query_weight: &[f64],
    k: usize,
    exclude_id: Option<u32>,
) -> Postings {
    let blocks = candidates.blocks();
    let grams = blocks.query_grams(query);
    let mut distances = [0.0f64; SCAN_CHUNK];
    let mut topk = TopK::new(k);
    let n = candidates.len();
    let mut start = 0;
    while start < n {
        let len = SCAN_CHUNK.min(n - start);
        blocks.scan_range_into(&grams, query, query_weight, start, &mut distances[..len]);
        for (jj, &d) in distances[..len].iter().enumerate() {
            let cand_id = candidates.id(start + jj);
            if exclude_id == Some(cand_id) {
                continue;
            }
            // amcad-lint: allow(alloc-in-hot-loop) — TopK's heap is pre-sized to k+1 at construction and never grows past it
            topk.push(d, cand_id);
        }
        start += len;
    }
    topk.into_sorted()
}

/// Exact top-K search from every key to the candidate set.
///
/// * `exclude_same_id`: skip a candidate whose id equals the key's id (used
///   for the self-indices Q2Q / I2I).
/// * `threads`: number of worker threads (1 = sequential).
pub fn build_exact_index(
    keys: &MixedPointSet,
    candidates: &MixedPointSet,
    k: usize,
    exclude_same_id: bool,
    threads: usize,
) -> InvertedIndex {
    let n_keys = keys.len();
    if n_keys == 0 || candidates.is_empty() || k == 0 {
        return InvertedIndex::default();
    }
    let threads = threads.max(1).min(n_keys);

    let search_range = |start: usize, end: usize| -> Vec<(u32, Postings)> {
        let mut out = Vec::with_capacity(end - start);
        for i in start..end {
            let key_id = keys.id(i);
            let exclude = if exclude_same_id { Some(key_id) } else { None };
            out.push((
                key_id,
                scan_top_k(candidates, keys.point(i), keys.weight(i), k, exclude),
            ));
        }
        out
    };

    let mut entries = HashMap::with_capacity(n_keys);
    if threads == 1 {
        for (key, postings) in search_range(0, n_keys) {
            entries.insert(key, postings);
        }
    } else {
        let chunk = n_keys.div_ceil(threads);
        // amcad-lint: allow(thread-discipline) — build-time scoped fan-out in a leaf crate: amcad-mnn sits below amcad-retrieval in the dependency graph, so it cannot borrow the serving crate's pools without a cycle
        let results: Vec<Vec<(u32, Postings)>> = crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(n_keys);
                if start >= end {
                    continue;
                }
                let search = &search_range;
                handles.push(scope.spawn(move |_| search(start, end)));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("index-building threads must not panic");
        for shard in results {
            for (key, postings) in shard {
                entries.insert(key, postings);
            }
        }
    }
    InvertedIndex { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_set;

    #[test]
    fn index_contains_every_key_with_k_sorted_postings() {
        let keys = random_set(20, 1);
        let cands = random_set(50, 2);
        let index = build_exact_index(&keys, &cands, 5, false, 1);
        assert_eq!(index.len(), 20);
        for (_, postings) in index.iter() {
            assert_eq!(postings.len(), 5);
            for w in postings.windows(2) {
                assert!(w[0].1 <= w[1].1, "postings must be sorted by distance");
            }
        }
    }

    #[test]
    fn nearest_neighbour_of_a_key_present_in_candidates_is_itself() {
        let set = random_set(30, 3);
        let index = build_exact_index(&set, &set, 3, false, 1);
        for i in 0..set.len() {
            let id = set.id(i);
            let postings = index.get(id).unwrap();
            assert_eq!(postings[0].0, id, "self must be the nearest neighbour");
            assert!(postings[0].1.abs() < 1e-9);
        }
    }

    #[test]
    fn exclude_same_id_removes_self_matches() {
        let set = random_set(30, 4);
        let index = build_exact_index(&set, &set, 3, true, 1);
        for i in 0..set.len() {
            let id = set.id(i);
            assert!(index.get(id).unwrap().iter().all(|(c, _)| *c != id));
        }
    }

    #[test]
    fn parallel_and_sequential_results_agree() {
        let keys = random_set(40, 5);
        let cands = random_set(80, 6);
        let seq = build_exact_index(&keys, &cands, 4, false, 1);
        let par = build_exact_index(&keys, &cands, 4, false, 4);
        assert_eq!(seq.len(), par.len());
        for (key, postings) in seq.iter() {
            let other = par.get(*key).unwrap();
            assert_eq!(postings.len(), other.len());
            for (a, b) in postings.iter().zip(other) {
                assert_eq!(a.0, b.0);
                assert!((a.1 - b.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empty_inputs_yield_empty_index() {
        let keys = random_set(0, 7);
        let cands = random_set(10, 8);
        assert!(build_exact_index(&keys, &cands, 3, false, 2).is_empty());
        assert!(build_exact_index(&cands, &keys, 3, false, 2).is_empty());
        assert!(build_exact_index(&cands, &cands, 0, false, 2).is_empty());
    }

    #[test]
    fn topk_keeps_the_smallest_distances() {
        let mut topk = TopK::new(2);
        topk.push(3.0, 1);
        topk.push(1.0, 2);
        topk.push(2.0, 3);
        topk.push(0.5, 4);
        let sorted = topk.into_sorted();
        assert_eq!(
            sorted.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![4, 2]
        );
    }

    #[test]
    fn topk_tie_breaking_is_scan_order_independent() {
        // equal distances at the top-K boundary: the kept set is the
        // smallest (distance, id) pairs regardless of scan order, so
        // exact and full-probe IVF scans agree even on ties
        let permutations: [[(f64, u32); 3]; 3] = [
            [(1.0, 5), (2.0, 9), (2.0, 3)],
            [(2.0, 3), (2.0, 9), (1.0, 5)],
            [(2.0, 9), (1.0, 5), (2.0, 3)],
        ];
        for order in permutations {
            let mut topk = TopK::new(2);
            for (d, id) in order {
                topk.push(d, id);
            }
            let ids: Vec<u32> = topk.into_sorted().iter().map(|(id, _)| *id).collect();
            assert_eq!(ids, vec![5, 3], "kept set must not depend on scan order");
        }
    }

    #[test]
    fn topk_evicts_nan_distances_for_real_candidates() {
        // a corrupt (NaN) distance — of either sign bit, since hardware
        // 0/0 yields a sign-bit-set NaN — must not panic, squat in the
        // heap, or outrank any real candidate
        for nan in [f64::NAN, -f64::NAN] {
            let mut topk = TopK::new(2);
            topk.push(5.0, 1);
            topk.push(nan, 2);
            topk.push(0.1, 3);
            let sorted = topk.into_sorted();
            assert_eq!(
                sorted.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                vec![3, 1],
                "the real 0.1 candidate must evict the NaN entry"
            );
            // all-NaN input still yields a full, non-panicking posting list
            let mut all_nan = TopK::new(2);
            all_nan.push(nan, 7);
            all_nan.push(nan, 8);
            all_nan.push(1.0, 9);
            let sorted = all_nan.into_sorted();
            assert_eq!(sorted.first().unwrap().0, 9, "real candidate ranks first");
        }
    }
}
