//! # amcad-mnn
//!
//! Mixed-curvature (approximate) nearest-neighbour search — the MNN module
//! of the paper (Section IV-C.1) that turns trained embeddings into the
//! inverted indices used by online ad retrieval.
//!
//! * [`MixedPointSet`] — flat storage of points of one edge space plus their
//!   precomputed attention weights,
//! * [`build_exact_index`] — multi-threaded exact top-K scan (the paper's
//!   OpenMP + SIMD parallel brute force),
//! * [`IvfIndex`] — an inverted-file approximate index whose coarse
//!   quantiser lives in the shared tangent space, with recall measurement
//!   against the exact index ([`recall_at_k`]).

pub mod brute;
pub mod ivf;
pub mod points;

pub use brute::{build_exact_index, InvertedIndex, Postings};
pub use ivf::{recall_at_k, IvfConfig, IvfIndex};
pub use points::MixedPointSet;
