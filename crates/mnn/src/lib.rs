//! # amcad-mnn
//!
//! Mixed-curvature (approximate) nearest-neighbour search — the MNN module
//! of the paper (Section IV-C.1) that turns trained embeddings into the
//! inverted indices used by online ad retrieval.
//!
//! * [`MixedPointSet`] — flat storage of points of one edge space plus their
//!   precomputed attention weights,
//! * [`AnnIndex`] — the pluggable backend trait: per-query top-K search,
//!   bulk inverted-index construction over any candidate set, and an
//!   incremental-insert seam (`insert`) for streaming corpus updates,
//! * [`ExactBackend`] / [`build_exact_index`] — multi-threaded exact top-K
//!   scan (the paper's OpenMP + SIMD parallel brute force),
//! * [`IvfBackend`] / [`IvfIndex`] — an inverted-file approximate index
//!   whose coarse quantiser lives in the shared tangent space, with recall
//!   measurement against the exact index ([`recall_at_k`]),
//! * [`HnswBackend`] / [`HnswIndex`] — a hierarchical navigable-small-world
//!   graph over the mixed-curvature metric itself: sub-linear search with a
//!   tunable beam (`ef_search`), and the one backend whose incremental
//!   `insert` is literally its construction path,
//! * [`QuantBackend`] / [`QuantIndex`] — quantised postings: per-component
//!   product-quantisation sub-codebooks trained in tangent space, one-byte
//!   codes scanned through a per-query asymmetric distance table over the
//!   mixed-curvature geodesic, and an exact top-`rerank_k` rerank,
//! * [`IndexBackend`] — the configuration enum downstream code uses to
//!   select a backend (`Exact`, `Ivf(IvfConfig)`, `Hnsw(HnswConfig)` or
//!   `Quant(QuantConfig)`).
//!
//! ## Choosing a backend
//!
//! | backend | search cost | recall | knobs | incremental `insert` |
//! |---|---|---|---|---|
//! | `Exact` | O(n) per query, threaded bulk builds | 1.0 by definition | `threads` | append + rescan (trivially exact) |
//! | `Ivf` | O(n/clusters × nprobe) | high, tunable | `num_clusters`, `nprobe` | nearest-centroid assignment (quantisation frozen) |
//! | `Hnsw` | ~O(log n) greedy + `ef_search` beam | high, tunable | `m`, `ef_construction`, `ef_search` | native — insertion *is* construction |
//! | `Quant` | O(n) table lookups + `rerank_k` exact distances | high, tunable | `ksub`, `rerank_k` | nearest-sub-centroid encoding (codebooks frozen) |
//!
//! The approximate backends each have a saturation point at which they
//! become exhaustive and bit-identical to the exact scan: probing every IVF
//! cluster (`nprobe == num_clusters`), an HNSW beam and degree at the
//! corpus size ([`HnswConfig::saturated`]), or a corpus-wide quantised
//! rerank (`rerank_k >= n`). The parity suites in
//! `tests/backend_parity.rs` pin all three.
//!
//! `Quant` is also the memory backend: postings cost one `u8` code plus one
//! `f32` weight per curvature component per ad, against a full-precision
//! point's `8 × total_dim + 8 × components` bytes — the bench harness
//! reports the measured ratio in its `memory_footprint` section.

pub mod backend;
pub mod brute;
pub mod hnsw;
pub mod ivf;
pub mod points;
pub mod quant;

pub use backend::{AnnBackendState, AnnIndex, ExactBackend, HnswBackend, IndexBackend, IvfBackend};
pub use brute::{build_exact_index, InvertedIndex, Postings};
pub use hnsw::{HnswConfig, HnswIndex, HnswState};
pub use ivf::{recall_at_k, IvfConfig, IvfIndex, IvfState};
pub use points::MixedPointSet;
pub use quant::{QuantBackend, QuantConfig, QuantIndex, QuantState};

/// Shared fixture for this crate's unit-test modules: `n` random points
/// on one hyperbolic x spherical product manifold. (The integration test
/// in `tests/` keeps its own copy — `pub(crate)` is invisible there.)
#[cfg(test)]
pub(crate) mod test_util {
    use crate::points::MixedPointSet;
    use amcad_manifold::{ProductManifold, SubspaceSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub(crate) fn random_set(n: usize, seed: u64) -> MixedPointSet {
        let manifold =
            ProductManifold::new(vec![SubspaceSpec::new(3, -1.0), SubspaceSpec::new(3, 1.0)]);
        let mut set = MixedPointSet::new(manifold.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            let tangent: Vec<f64> = (0..6).map(|_| rng.gen_range(-0.3..0.3)).collect();
            let w0: f64 = rng.gen_range(0.2..0.8);
            set.push(i as u32, &manifold.exp0(&tangent), &[w0, 1.0 - w0]);
        }
        set
    }
}
