//! IVF-style approximate nearest-neighbour search in mixed-curvature space.
//!
//! Traditional quantisation-based ANN (e.g. product quantisation) assumes a
//! dot-product or Euclidean metric; the paper notes that the attention-based
//! mixed-curvature similarity "is more complex and hard to directly use
//! traditional nearest neighbor search approaches" and therefore
//! parallelises an exact scan.  This module adds the natural middle ground:
//! a coarse inverted-file (IVF) quantiser built in the *shared tangent
//! space* (where the metric is Euclidean), with the exact mixed-curvature
//! distance applied only inside the probed clusters.  The benchmark harness
//! measures its recall against the exact index.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::brute::{InvertedIndex, Postings, TopK};
use crate::points::MixedPointSet;

/// Configuration of the IVF index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvfConfig {
    /// Number of coarse clusters.
    pub num_clusters: usize,
    /// Lloyd iterations for the tangent-space k-means.
    pub kmeans_iters: usize,
    /// Clusters probed per query.
    pub nprobe: usize,
    /// RNG seed for centroid initialisation.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig {
            num_clusters: 16,
            kmeans_iters: 8,
            nprobe: 4,
            seed: 11,
        }
    }
}

/// The resident state of an [`IvfIndex`], exported for durable
/// snapshots: the candidate set, the configuration, and the frozen
/// coarse quantisation (centroids + cluster assignments). Tangent
/// coordinates are *not* part of the state — they are a deterministic
/// function of the stored points (`log0`) and are recomputed on import,
/// keeping snapshots smaller without losing bit-exactness.
#[derive(Debug, Clone)]
pub struct IvfState {
    /// The indexed candidate set.
    pub candidates: MixedPointSet,
    /// The configuration the index was built with.
    pub config: IvfConfig,
    /// Tangent-space centroids of the frozen coarse quantisation.
    pub centroids: Vec<Vec<f64>>,
    /// Candidate slots assigned to each centroid's cluster.
    pub clusters: Vec<Vec<usize>>,
}

/// An IVF index over a candidate point set.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    candidates: MixedPointSet,
    /// Tangent-space (log-mapped) coordinates of every candidate.
    tangents: Vec<Vec<f64>>,
    centroids: Vec<Vec<f64>>,
    clusters: Vec<Vec<usize>>,
    config: IvfConfig,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl IvfIndex {
    /// Build an IVF index over the candidate set.
    pub fn build(candidates: MixedPointSet, config: IvfConfig) -> Self {
        let n = candidates.len();
        let manifold = candidates.manifold().clone();
        let tangents: Vec<Vec<f64>> = (0..n).map(|i| manifold.log0(candidates.point(i))).collect();

        let k = config.num_clusters.max(1).min(n.max(1));
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut centroid_seeds: Vec<usize> = (0..n).collect();
        centroid_seeds.shuffle(&mut rng);
        let mut centroids: Vec<Vec<f64>> = centroid_seeds
            .into_iter()
            .take(k)
            .map(|i| tangents[i].clone())
            .collect();

        let mut assignments = vec![0usize; n];
        for _ in 0..config.kmeans_iters.max(1) {
            // assign
            for (i, t) in tangents.iter().enumerate() {
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = sq_dist(t, centroid);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                assignments[i] = best;
            }
            // update
            let dim = manifold.total_dim();
            let mut sums = vec![vec![0.0; dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (i, t) in tangents.iter().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, v) in sums[c].iter_mut().zip(t) {
                    *s += v;
                }
            }
            for (c, centroid) in centroids.iter_mut().enumerate() {
                if counts[c] > 0 {
                    for (ci, s) in centroid.iter_mut().zip(&sums[c]) {
                        *ci = s / counts[c] as f64;
                    }
                }
            }
        }

        let mut clusters = vec![Vec::new(); centroids.len()];
        for (i, &c) in assignments.iter().enumerate() {
            clusters[c].push(i);
        }

        IvfIndex {
            candidates,
            tangents,
            centroids,
            clusters,
            config,
        }
    }

    /// Incrementally index additional candidates without re-running
    /// k-means: each new point is log-mapped into the tangent space and
    /// assigned to its nearest *existing* centroid (an index built over an
    /// empty set seeds its first centroid from the first insert). This is
    /// the streaming-update path delta publishes use — the coarse
    /// quantisation stays fixed, so search quality degrades gracefully as
    /// the corpus drifts from the clustered distribution; rebuild when the
    /// drift grows large.
    ///
    /// # Panics
    ///
    /// Panics if the manifolds differ.
    pub fn insert(&mut self, added: &MixedPointSet) {
        assert_eq!(
            self.candidates.manifold(),
            added.manifold(),
            "inserted points must live on the indexed manifold"
        );
        for i in 0..added.len() {
            let tangent = self.candidates.manifold().log0(added.point(i));
            if self.centroids.is_empty() {
                self.centroids.push(tangent.clone());
                self.clusters.push(Vec::new());
            }
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in self.centroids.iter().enumerate() {
                let d = sq_dist(&tangent, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            let slot = self.candidates.len();
            self.candidates
                .push(added.id(i), added.point(i), added.weight(i));
            self.tangents.push(tangent);
            self.clusters[best].push(slot);
        }
    }

    /// Export the resident state for a durable snapshot — see
    /// [`IvfState`] for what is captured and what is recomputed.
    pub fn export_state(&self) -> IvfState {
        IvfState {
            candidates: self.candidates.clone(),
            config: self.config,
            centroids: self.centroids.clone(),
            clusters: self.clusters.clone(),
        }
    }

    /// Rebuild an index from an exported [`IvfState`], recomputing the
    /// tangent coordinates from the stored points. The restored index
    /// searches identically to the saved one, and post-restart
    /// [`IvfIndex::insert`]s assign against the same frozen centroids an
    /// uninterrupted process would have used (the quantisation carries no
    /// RNG once built, so the state alone determines future inserts).
    ///
    /// The quantisation arrays are trusted as-given (a checksummed
    /// snapshot format guards the bytes); only the invariants needed to
    /// keep search in bounds are asserted.
    pub fn from_state(state: IvfState) -> Self {
        let n = state.candidates.len();
        assert_eq!(
            state.centroids.len(),
            state.clusters.len(),
            "one cluster per centroid"
        );
        assert!(
            state.clusters.iter().flatten().all(|&slot| slot < n),
            "cluster members must name stored slots"
        );
        let manifold = state.candidates.manifold().clone();
        let tangents: Vec<Vec<f64>> = (0..n)
            .map(|i| manifold.log0(state.candidates.point(i)))
            .collect();
        IvfIndex {
            candidates: state.candidates,
            tangents,
            centroids: state.centroids,
            clusters: state.clusters,
            config: state.config,
        }
    }

    /// Number of indexed candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &IvfConfig {
        &self.config
    }

    /// Number of non-empty clusters (useful for diagnosing degenerate
    /// clusterings).
    pub fn non_empty_clusters(&self) -> usize {
        self.clusters.iter().filter(|c| !c.is_empty()).count()
    }

    /// Approximate top-K search for one query point.
    pub fn search(
        &self,
        query: &[f64],
        query_weight: &[f64],
        k: usize,
        exclude_id: Option<u32>,
    ) -> Postings {
        if self.candidates.is_empty() || k == 0 {
            return Vec::new();
        }
        let query_tangent = self.candidates.manifold().log0(query);
        // rank clusters by centroid distance in tangent space
        let mut order: Vec<(f64, usize)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(c, centroid)| {
                let d = sq_dist(&query_tangent, centroid);
                // corrupt (NaN) centroid distances rank last, regardless
                // of NaN sign (total_cmp orders -NaN first)
                (if d.is_nan() { f64::INFINITY } else { d }, c)
            })
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));

        // hoisted per-query scratch: the query's component norms and one
        // distance lane per probed cluster, reused across clusters so the
        // gathered SoA sweep below allocates nothing inside the probe loop
        let blocks = self.candidates.blocks();
        let grams = blocks.query_grams(query);
        let widest = self.clusters.iter().map(Vec::len).max().unwrap_or(0);
        let mut distances: Vec<f64> = Vec::with_capacity(widest);
        let mut topk = TopK::new(k);
        for &(_, c) in order.iter().take(self.config.nprobe.max(1)) {
            let members = &self.clusters[c];
            if members.is_empty() {
                continue;
            }
            distances.resize(members.len(), 0.0);
            blocks.scan_indices_into(&grams, query, query_weight, members, &mut distances);
            for (jj, &j) in members.iter().enumerate() {
                let cand_id = self.candidates.id(j);
                if exclude_id == Some(cand_id) {
                    continue;
                }
                // amcad-lint: allow(alloc-in-hot-loop) — TopK's heap is pre-sized to k+1 at construction and never grows past it
                topk.push(distances[jj], cand_id);
            }
        }
        topk.into_sorted()
    }

    /// Build a full inverted index by searching every key of `keys`
    /// (delegates to the shared per-key loop in `brute`).
    pub fn build_index(
        &self,
        keys: &MixedPointSet,
        k: usize,
        exclude_same_id: bool,
    ) -> InvertedIndex {
        crate::brute::build_index_with(
            |q, w, k, e| self.search(q, w, k, e),
            self.is_empty(),
            keys,
            k,
            exclude_same_id,
        )
    }

    /// Tangent coordinates of candidate `i` (exposed for diagnostics).
    pub fn tangent(&self, i: usize) -> &[f64] {
        &self.tangents[i]
    }
}

/// Recall@K of an approximate index against the exact one: the average
/// fraction of each key's exact top-K that the approximate postings contain.
pub fn recall_at_k(approx: &InvertedIndex, exact: &InvertedIndex, k: usize) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (key, exact_postings) in exact.iter() {
        let truth: Vec<u32> = exact_postings.iter().take(k).map(|(id, _)| *id).collect();
        if truth.is_empty() {
            continue;
        }
        let approx_set: std::collections::HashSet<u32> = approx
            .get(*key)
            .map(|p| p.iter().take(k).map(|(id, _)| *id).collect())
            .unwrap_or_default();
        let hit = truth.iter().filter(|id| approx_set.contains(id)).count();
        total += hit as f64 / truth.len() as f64;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::build_exact_index;
    use crate::test_util::random_set;
    use amcad_manifold::{ProductManifold, SubspaceSpec};

    #[test]
    fn probing_all_clusters_reproduces_exact_results() {
        let cands = random_set(60, 1);
        let keys = random_set(15, 2);
        let exact = build_exact_index(&keys, &cands, 5, false, 1);
        let ivf = IvfIndex::build(
            cands,
            IvfConfig {
                num_clusters: 8,
                kmeans_iters: 5,
                nprobe: 8, // probe everything
                seed: 3,
            },
        );
        let approx = ivf.build_index(&keys, 5, false);
        let recall = recall_at_k(&approx, &exact, 5);
        assert!(
            (recall - 1.0).abs() < 1e-12,
            "full probing must be exact, got {recall}"
        );
    }

    #[test]
    fn partial_probing_trades_recall_for_work_but_stays_reasonable() {
        let cands = random_set(200, 4);
        let keys = random_set(30, 5);
        let exact = build_exact_index(&keys, &cands, 10, false, 1);
        let ivf = IvfIndex::build(
            cands,
            IvfConfig {
                num_clusters: 16,
                kmeans_iters: 8,
                nprobe: 4,
                seed: 6,
            },
        );
        let approx = ivf.build_index(&keys, 10, false);
        let recall = recall_at_k(&approx, &exact, 10);
        assert!(
            recall > 0.5,
            "nprobe=4/16 should recover most neighbours, got {recall}"
        );
        assert!(recall <= 1.0 + 1e-12);
    }

    #[test]
    fn self_exclusion_works_through_the_ivf_path() {
        let set = random_set(50, 7);
        let ivf = IvfIndex::build(set.clone(), IvfConfig::default());
        let index = ivf.build_index(&set, 3, true);
        for i in 0..set.len() {
            let id = set.id(i);
            assert!(index.get(id).unwrap().iter().all(|(c, _)| *c != id));
        }
    }

    #[test]
    fn clusters_partition_the_candidates() {
        let set = random_set(80, 8);
        let ivf = IvfIndex::build(set, IvfConfig::default());
        let total: usize = (0..ivf.centroids.len())
            .map(|c| ivf.clusters[c].len())
            .sum();
        assert_eq!(total, ivf.len());
        assert!(ivf.non_empty_clusters() > 1);
    }

    #[test]
    fn recall_of_identical_indices_is_one_and_empty_is_zero() {
        let cands = random_set(30, 9);
        let keys = random_set(10, 10);
        let exact = build_exact_index(&keys, &cands, 5, false, 1);
        assert!((recall_at_k(&exact, &exact, 5) - 1.0).abs() < 1e-12);
        let empty = InvertedIndex::default();
        assert_eq!(recall_at_k(&empty, &exact, 5), 0.0);
        assert_eq!(recall_at_k(&exact, &empty, 5), 0.0);
    }

    #[test]
    fn inserted_candidates_are_searchable_and_clusters_still_partition() {
        let base = random_set(50, 11);
        let extra_full = random_set(62, 11); // same seed: first 50 identical
        let extra = {
            let mut e = crate::points::MixedPointSet::new(base.manifold().clone());
            for i in 50..extra_full.len() {
                e.push(extra_full.id(i), extra_full.point(i), extra_full.weight(i));
            }
            e
        };
        let config = IvfConfig {
            num_clusters: 6,
            kmeans_iters: 5,
            nprobe: 6, // full probing: insert must be exactly searchable
            seed: 2,
        };
        let mut ivf = IvfIndex::build(base, config);
        ivf.insert(&extra);
        assert_eq!(ivf.len(), 62);
        let total: usize = ivf.clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 62, "clusters must still partition the candidates");
        // under full probing the streaming insert is exact: every search
        // matches a brute-force scan over the union
        let keys = random_set(12, 12);
        let exact = build_exact_index(&keys, &extra_full, 5, false, 1);
        let approx = ivf.build_index(&keys, 5, false);
        assert!((recall_at_k(&approx, &exact, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exported_state_round_trips_and_post_restart_inserts_stay_deterministic() {
        let base = random_set(50, 14);
        let extra_full = random_set(62, 14); // same seed: first 50 identical
        let extra = {
            let mut e = MixedPointSet::new(base.manifold().clone());
            for i in 50..extra_full.len() {
                e.push(extra_full.id(i), extra_full.point(i), extra_full.weight(i));
            }
            e
        };
        let config = IvfConfig {
            num_clusters: 6,
            kmeans_iters: 5,
            nprobe: 3, // partial probing: cluster assignments must survive
            seed: 4,
        };
        let mut uninterrupted = IvfIndex::build(base.clone(), config);
        let mut restored = IvfIndex::from_state(IvfIndex::build(base, config).export_state());
        let keys = random_set(12, 15);
        for i in 0..keys.len() {
            assert_eq!(
                restored.search(keys.point(i), keys.weight(i), 5, None),
                uninterrupted.search(keys.point(i), keys.weight(i), 5, None),
            );
        }
        // post-restart inserts assign against the same frozen centroids
        uninterrupted.insert(&extra);
        restored.insert(&extra);
        assert_eq!(restored.len(), 62);
        for (a, b) in restored.clusters.iter().zip(&uninterrupted.clusters) {
            assert_eq!(a, b, "post-restart cluster assignments diverged");
        }
        for i in 0..keys.len() {
            assert_eq!(
                restored.search(keys.point(i), keys.weight(i), 5, None),
                uninterrupted.search(keys.point(i), keys.weight(i), 5, None),
            );
        }
        // recomputed tangents are bit-identical to the originals
        for i in 0..restored.len() {
            assert_eq!(restored.tangent(i), uninterrupted.tangent(i));
        }
    }

    #[test]
    fn insert_into_an_empty_index_seeds_a_centroid() {
        let points = random_set(10, 13);
        let empty = crate::points::MixedPointSet::new(points.manifold().clone());
        let mut ivf = IvfIndex::build(empty, IvfConfig::default());
        assert!(ivf.is_empty());
        ivf.insert(&points);
        assert_eq!(ivf.len(), 10);
        assert_eq!(
            ivf.non_empty_clusters(),
            1,
            "all land on the seeded centroid"
        );
        let hits = ivf.search(points.point(0), points.weight(0), 3, None);
        assert_eq!(hits.first().unwrap().0, points.id(0));
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let manifold = ProductManifold::new(vec![SubspaceSpec::new(2, 0.0)]);
        let empty = MixedPointSet::new(manifold.clone());
        let ivf = IvfIndex::build(empty, IvfConfig::default());
        assert!(ivf.is_empty());
        assert!(ivf.search(&[0.0, 0.0], &[1.0], 3, None).is_empty());
    }
}
