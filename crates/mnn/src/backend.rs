//! Pluggable ANN backends behind one trait.
//!
//! The paper's MNN module is one fixed algorithm (a parallel exact scan);
//! this module turns index construction into a seam: [`AnnIndex`] abstracts
//! "a searchable candidate set", [`ExactBackend`] wraps the multi-threaded
//! brute-force scan, [`IvfBackend`] wraps the tangent-space IVF quantiser,
//! [`HnswBackend`] wraps the incremental navigable-small-world graph, and
//! [`IndexBackend`] is the configuration enum callers use to pick one.
//! Everything downstream — `IndexSet`, the retrieval engine, the serving
//! benchmarks — works against the trait, so exact and approximate backends
//! are interchangeable end to end and new backends (quantised postings,
//! sharded scans) only have to implement `AnnIndex`.

use crate::brute::{build_exact_index, InvertedIndex, Postings};
use crate::hnsw::{HnswConfig, HnswIndex, HnswState};
use crate::ivf::{IvfConfig, IvfIndex, IvfState};
use crate::points::MixedPointSet;
use crate::quant::{QuantBackend, QuantConfig, QuantIndex, QuantState};

/// A searchable index over one candidate point set.
///
/// Implementations own their candidates and answer mixed-curvature top-K
/// queries; [`AnnIndex::build_index`] turns a whole key set into an
/// inverted index (backends may override it with a faster bulk path).
pub trait AnnIndex: Send + Sync {
    /// Short backend name for logs and benchmark tables (e.g. `"exact"`).
    fn backend_name(&self) -> &'static str;

    /// Number of indexed candidates.
    fn len(&self) -> usize;

    /// Whether the index holds no candidates.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Top-`k` candidates for one query point (with its attention
    /// weights), sorted by increasing mixed-curvature distance.
    fn search(
        &self,
        query: &[f64],
        query_weight: &[f64],
        k: usize,
        exclude_id: Option<u32>,
    ) -> Postings;

    /// Incrementally index additional candidates in place — the seam for
    /// long-lived indices over a streaming corpus. Returns `true` when
    /// the backend applied the insert; the default returns `false`,
    /// telling the caller the backend has no incremental path and a
    /// rebuild is required. Implementations must make inserted candidates
    /// immediately visible to [`AnnIndex::search`]. Note that the
    /// serving-side delta publishes materialise posting lists instead
    /// (bulk `build_index` over just the added candidates), so today this
    /// seam serves resident-index use cases and future online backends,
    /// not `EngineHandle::publish_delta`.
    fn insert(&mut self, added: &MixedPointSet) -> bool {
        let _ = added;
        false
    }

    /// Build the full inverted index for a key set: one posting list per
    /// key. The default implementation searches key by key through the
    /// shared per-key loop; backends with a faster bulk path (e.g. the
    /// threaded exact scan) override it.
    fn build_index(&self, keys: &MixedPointSet, k: usize, exclude_same_id: bool) -> InvertedIndex {
        crate::brute::build_index_with(
            |q, w, k, e| self.search(q, w, k, e),
            self.is_empty(),
            keys,
            k,
            exclude_same_id,
        )
    }
}

/// The exact backend: the paper's parallel brute-force scan behind the
/// [`AnnIndex`] seam.
#[derive(Debug, Clone)]
pub struct ExactBackend {
    candidates: MixedPointSet,
    threads: usize,
}

impl ExactBackend {
    /// Wrap a candidate set; `threads` parallelises bulk index builds.
    pub fn new(candidates: MixedPointSet, threads: usize) -> Self {
        ExactBackend {
            candidates,
            threads: threads.max(1),
        }
    }

    /// The indexed candidate set.
    pub fn candidates(&self) -> &MixedPointSet {
        &self.candidates
    }

    /// Worker threads used by bulk index builds.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Export the resident state for a durable snapshot. The exact scan
    /// carries no auxiliary structure, so its state is the candidate set
    /// plus the thread knob.
    pub fn export_state(&self) -> AnnBackendState {
        AnnBackendState::Exact {
            candidates: self.candidates.clone(),
            threads: self.threads,
        }
    }
}

impl AnnIndex for ExactBackend {
    fn backend_name(&self) -> &'static str {
        "exact"
    }

    fn len(&self) -> usize {
        self.candidates.len()
    }

    /// The exact scan inserts by appending: every new candidate joins the
    /// flat buffers and is scanned like any other.
    fn insert(&mut self, added: &MixedPointSet) -> bool {
        self.candidates.append(added);
        true
    }

    fn search(
        &self,
        query: &[f64],
        query_weight: &[f64],
        k: usize,
        exclude_id: Option<u32>,
    ) -> Postings {
        if self.candidates.is_empty() || k == 0 {
            return Vec::new();
        }
        crate::brute::scan_top_k(&self.candidates, query, query_weight, k, exclude_id)
    }

    fn build_index(&self, keys: &MixedPointSet, k: usize, exclude_same_id: bool) -> InvertedIndex {
        build_exact_index(keys, &self.candidates, k, exclude_same_id, self.threads)
    }
}

/// The IVF backend: tangent-space coarse quantisation with exact
/// re-ranking inside the probed clusters.
#[derive(Debug, Clone)]
pub struct IvfBackend {
    index: IvfIndex,
}

impl IvfBackend {
    /// Cluster a candidate set under the given IVF configuration.
    pub fn new(candidates: MixedPointSet, config: IvfConfig) -> Self {
        IvfBackend {
            index: IvfIndex::build(candidates, config),
        }
    }

    /// The underlying IVF index (cluster diagnostics, tangent coords).
    pub fn ivf(&self) -> &IvfIndex {
        &self.index
    }

    /// Wrap an already-built (e.g. snapshot-restored) IVF index.
    pub fn from_index(index: IvfIndex) -> Self {
        IvfBackend { index }
    }

    /// Export the resident state for a durable snapshot (see
    /// [`IvfState`]).
    pub fn export_state(&self) -> AnnBackendState {
        AnnBackendState::Ivf(self.index.export_state())
    }
}

impl AnnIndex for IvfBackend {
    fn backend_name(&self) -> &'static str {
        "ivf"
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    /// IVF inserts by assigning each new candidate to its nearest
    /// existing centroid — the coarse quantisation stays fixed (see
    /// [`IvfIndex::insert`]).
    fn insert(&mut self, added: &MixedPointSet) -> bool {
        self.index.insert(added);
        true
    }

    fn search(
        &self,
        query: &[f64],
        query_weight: &[f64],
        k: usize,
        exclude_id: Option<u32>,
    ) -> Postings {
        self.index.search(query, query_weight, k, exclude_id)
    }
}

/// The HNSW backend: a hierarchical navigable-small-world graph whose
/// insertion path *is* its construction path — the one backend whose
/// [`AnnIndex::insert`] genuinely extends the resident index structure
/// instead of appending to a rescanned buffer or a frozen quantisation.
#[derive(Debug, Clone)]
pub struct HnswBackend {
    index: HnswIndex,
}

impl HnswBackend {
    /// Build a graph over a candidate set by streaming every point through
    /// the insert path.
    pub fn new(candidates: MixedPointSet, config: HnswConfig) -> Self {
        HnswBackend {
            index: HnswIndex::build(candidates, config),
        }
    }

    /// The underlying graph (level diagnostics, link inspection).
    pub fn hnsw(&self) -> &HnswIndex {
        &self.index
    }

    /// Wrap an already-built (e.g. snapshot-restored) HNSW graph.
    pub fn from_index(index: HnswIndex) -> Self {
        HnswBackend { index }
    }

    /// Export the resident state for a durable snapshot (see
    /// [`HnswState`]).
    pub fn export_state(&self) -> AnnBackendState {
        AnnBackendState::Hnsw(self.index.export_state())
    }
}

impl AnnIndex for HnswBackend {
    fn backend_name(&self) -> &'static str {
        "hnsw"
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    /// HNSW inserts natively: each point is wired into the resident graph
    /// through the same code path a bulk build uses (see
    /// [`HnswIndex::insert`]).
    fn insert(&mut self, added: &MixedPointSet) -> bool {
        self.index.insert(added);
        true
    }

    fn search(
        &self,
        query: &[f64],
        query_weight: &[f64],
        k: usize,
        exclude_id: Option<u32>,
    ) -> Postings {
        self.index.search(query, query_weight, k, exclude_id)
    }
}

/// Backend selection carried by index-build configurations.
///
/// The enum is the *configuration* surface (plain data, `Copy`); the
/// [`AnnIndex`] trait is the *implementation* seam. A new backend plugs in
/// by implementing `AnnIndex` and adding one variant here wired through
/// [`IndexBackend::instantiate`] — every downstream consumer
/// (`IndexSet::build`, the retrieval engine, benches) dispatches through
/// these two entry points.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum IndexBackend {
    /// Exact multi-threaded scan (the paper's MNN module).
    #[default]
    Exact,
    /// Approximate inverted-file search with the given configuration.
    Ivf(IvfConfig),
    /// Approximate hierarchical navigable-small-world graph search with
    /// the given configuration — the natively incremental backend.
    Hnsw(HnswConfig),
    /// Quantised postings: per-component sub-codebooks, asymmetric table
    /// scan and exact top-`rerank_k` rerank — the memory backend.
    Quant(QuantConfig),
}

impl IndexBackend {
    /// Short label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            IndexBackend::Exact => "exact",
            IndexBackend::Ivf(_) => "ivf",
            IndexBackend::Hnsw(_) => "hnsw",
            IndexBackend::Quant(_) => "quant",
        }
    }

    /// Instantiate the backend over a candidate set. `threads` only
    /// affects backends with a parallel bulk path (currently the exact
    /// scan).
    pub fn instantiate(&self, candidates: MixedPointSet, threads: usize) -> Box<dyn AnnIndex> {
        match *self {
            IndexBackend::Exact => Box::new(ExactBackend::new(candidates, threads)),
            IndexBackend::Ivf(config) => Box::new(IvfBackend::new(candidates, config)),
            IndexBackend::Hnsw(config) => Box::new(HnswBackend::new(candidates, config)),
            IndexBackend::Quant(config) => Box::new(QuantBackend::new(candidates, config)),
        }
    }

    /// Bulk inverted-index construction without a long-lived backend: the
    /// exact scan borrows the candidate set directly; IVF clones it into
    /// the clustering structures it genuinely owns. Offline builders
    /// (e.g. `IndexSet::build`) use this to avoid copying every candidate
    /// set just to drop the backend again.
    pub fn build_index(
        &self,
        keys: &MixedPointSet,
        candidates: &MixedPointSet,
        k: usize,
        exclude_same_id: bool,
        threads: usize,
    ) -> InvertedIndex {
        match *self {
            // the exact scan has a borrowing bulk path (no clone)
            IndexBackend::Exact => {
                build_exact_index(keys, candidates, k, exclude_same_id, threads.max(1))
            }
            // everything else goes through the trait object
            _ => {
                self.instantiate(candidates.clone(), threads)
                    .build_index(keys, k, exclude_same_id)
            }
        }
    }
}

/// The exported resident state of any [`AnnIndex`] backend — the
/// snapshot-side mirror of [`IndexBackend`]: where the enum *configures*
/// a backend to be built, this enum *carries* one that already was. A
/// durable snapshot stores it so a restarted process resumes searching —
/// and, crucially, inserting — exactly where the saved process stopped:
/// the IVF variant keeps the frozen quantisation instead of re-running
/// k-means, and the HNSW variant keeps the graph plus the mid-stream RNG
/// state so post-restart inserts draw the same level sequence.
#[derive(Debug, Clone)]
pub enum AnnBackendState {
    /// Exact scan: the candidate buffers and the bulk-build thread knob.
    Exact {
        /// The indexed candidate set.
        candidates: MixedPointSet,
        /// Worker threads for bulk index builds.
        threads: usize,
    },
    /// IVF: candidates plus the frozen coarse quantisation.
    Ivf(IvfState),
    /// HNSW: candidates, graph and level-sampling RNG state.
    Hnsw(HnswState),
    /// Quant: candidates plus the frozen sub-codebooks and code lanes.
    Quant(QuantState),
}

impl AnnBackendState {
    /// Short label matching [`IndexBackend::label`].
    pub fn label(&self) -> &'static str {
        match self {
            AnnBackendState::Exact { .. } => "exact",
            AnnBackendState::Ivf(_) => "ivf",
            AnnBackendState::Hnsw(_) => "hnsw",
            AnnBackendState::Quant(_) => "quant",
        }
    }

    /// Revive the backend this state was exported from. The restored
    /// backend searches — and keeps inserting — exactly like the saved
    /// one (tested per backend in `hnsw`/`ivf` and end to end by the
    /// snapshot-store suite in `amcad-retrieval`).
    pub fn instantiate(self) -> Box<dyn AnnIndex> {
        match self {
            AnnBackendState::Exact {
                candidates,
                threads,
            } => Box::new(ExactBackend::new(candidates, threads)),
            AnnBackendState::Ivf(state) => {
                Box::new(IvfBackend::from_index(IvfIndex::from_state(state)))
            }
            AnnBackendState::Hnsw(state) => {
                Box::new(HnswBackend::from_index(HnswIndex::from_state(state)))
            }
            AnnBackendState::Quant(state) => {
                Box::new(QuantBackend::from_index(QuantIndex::from_state(state)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_set;
    use amcad_manifold::{ProductManifold, SubspaceSpec};

    #[test]
    fn exact_backend_matches_the_brute_force_builder() {
        let keys = random_set(25, 1);
        let cands = random_set(60, 2);
        let reference = build_exact_index(&keys, &cands, 6, false, 1);
        let backend = ExactBackend::new(cands, 2);
        let via_trait = backend.build_index(&keys, 6, false);
        assert_eq!(via_trait.len(), reference.len());
        for (key, postings) in reference.iter() {
            let got = via_trait.get(*key).unwrap();
            assert_eq!(postings.len(), got.len());
            for (a, b) in postings.iter().zip(got) {
                assert_eq!(a.0, b.0);
                assert!((a.1 - b.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn exact_backend_per_query_search_agrees_with_bulk_build() {
        let keys = random_set(10, 3);
        let cands = random_set(40, 4);
        let backend = ExactBackend::new(cands, 1);
        let bulk = backend.build_index(&keys, 5, true);
        for i in 0..keys.len() {
            let id = keys.id(i);
            let single = backend.search(keys.point(i), keys.weight(i), 5, Some(id));
            assert_eq!(bulk.get(id).unwrap(), &single);
        }
    }

    #[test]
    fn backend_enum_instantiates_every_backend() {
        let cands = random_set(30, 5);
        let exact = IndexBackend::Exact.instantiate(cands.clone(), 2);
        assert_eq!(exact.backend_name(), "exact");
        assert_eq!(exact.len(), 30);
        let ivf = IndexBackend::Ivf(IvfConfig::default()).instantiate(cands.clone(), 1);
        assert_eq!(ivf.backend_name(), "ivf");
        assert_eq!(ivf.len(), 30);
        assert!(!ivf.is_empty());
        let hnsw = IndexBackend::Hnsw(HnswConfig::default()).instantiate(cands.clone(), 1);
        assert_eq!(hnsw.backend_name(), "hnsw");
        assert_eq!(hnsw.len(), 30);
        let quant = IndexBackend::Quant(QuantConfig::default()).instantiate(cands, 1);
        assert_eq!(quant.backend_name(), "quant");
        assert_eq!(quant.len(), 30);
        assert_eq!(IndexBackend::default(), IndexBackend::Exact);
        assert_eq!(IndexBackend::Hnsw(HnswConfig::default()).label(), "hnsw");
        assert_eq!(IndexBackend::Quant(QuantConfig::default()).label(), "quant");
    }

    #[test]
    fn bulk_build_index_matches_the_instantiated_backend() {
        let keys = random_set(12, 8);
        let cands = random_set(40, 9);
        for backend in [
            IndexBackend::Exact,
            IndexBackend::Ivf(IvfConfig::default()),
            IndexBackend::Hnsw(HnswConfig::default()),
            IndexBackend::Quant(QuantConfig::default()),
        ] {
            let direct = backend.build_index(&keys, &cands, 5, false, 2);
            let via_trait = backend
                .instantiate(cands.clone(), 2)
                .build_index(&keys, 5, false);
            assert_eq!(direct.len(), via_trait.len());
            for (key, postings) in direct.iter() {
                assert_eq!(postings, via_trait.get(*key).unwrap());
            }
        }
    }

    #[test]
    fn incremental_insert_matches_a_rebuild_over_the_union() {
        // split one candidate set (same seed → identical prefixes) into a
        // base and an increment, insert through the trait seam, and the
        // result must be indistinguishable from indexing the union
        let union = random_set(60, 20);
        let base = union.filtered(|id| id < 40);
        let mut increment = MixedPointSet::new(union.manifold().clone());
        for i in 40..union.len() {
            increment.push(union.id(i), union.point(i), union.weight(i));
        }
        let keys = random_set(15, 21);

        let mut exact: Box<dyn AnnIndex> = IndexBackend::Exact.instantiate(base.clone(), 2);
        assert!(exact.insert(&increment), "the exact scan supports inserts");
        assert_eq!(exact.len(), union.len());
        let rebuilt = IndexBackend::Exact.instantiate(union.clone(), 2);
        for i in 0..keys.len() {
            assert_eq!(
                exact.search(keys.point(i), keys.weight(i), 6, None),
                rebuilt.search(keys.point(i), keys.weight(i), 6, None),
                "inserted candidates must be scanned exactly like rebuilt ones"
            );
        }

        // IVF under full probing: streaming insert is exact too
        let full_probe = IndexBackend::Ivf(IvfConfig {
            num_clusters: 5,
            kmeans_iters: 4,
            nprobe: 5,
            seed: 8,
        });
        let mut ivf = full_probe.instantiate(base.clone(), 1);
        assert!(ivf.insert(&increment));
        assert_eq!(ivf.len(), union.len());
        for i in 0..keys.len() {
            let got = ivf.search(keys.point(i), keys.weight(i), 6, None);
            let want = rebuilt.search(keys.point(i), keys.weight(i), 6, None);
            assert_eq!(
                got.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                want.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                "full-probe IVF inserts must recall exactly"
            );
        }

        // HNSW under saturation: the streaming insert extends the resident
        // graph through the bulk-build code path, so inserted candidates
        // are recalled exactly like rebuilt ones
        let saturated = IndexBackend::Hnsw(HnswConfig::saturated(union.len()));
        let mut hnsw = saturated.instantiate(base.clone(), 1);
        assert!(hnsw.insert(&increment), "HNSW supports native inserts");
        assert_eq!(hnsw.len(), union.len());
        for i in 0..keys.len() {
            assert_eq!(
                hnsw.search(keys.point(i), keys.weight(i), 6, None),
                rebuilt.search(keys.point(i), keys.weight(i), 6, None),
                "saturated HNSW inserts must recall exactly"
            );
        }

        // Quant under a corpus-wide rerank: the frozen codebooks only
        // steer the approximate pool, and the pool is everything, so the
        // exact rerank makes streamed inserts bit-identical to a rebuild
        let corpus_wide = IndexBackend::Quant(QuantConfig {
            ksub: 8,
            train_iters: 4,
            rerank_k: union.len(),
            seed: 8,
        });
        let mut quant = corpus_wide.instantiate(base, 1);
        assert!(quant.insert(&increment), "quant supports inserts");
        assert_eq!(quant.len(), union.len());
        for i in 0..keys.len() {
            assert_eq!(
                quant.search(keys.point(i), keys.weight(i), 6, None),
                rebuilt.search(keys.point(i), keys.weight(i), 6, None),
                "corpus-wide-rerank quant inserts must recall exactly"
            );
        }
    }

    #[test]
    fn backend_state_export_revives_every_backend_identically() {
        let base = random_set(40, 30);
        let keys = random_set(10, 31);
        let increment = {
            let full = random_set(52, 30); // same seed: first 40 identical
            let mut inc = MixedPointSet::new(base.manifold().clone());
            for i in 40..full.len() {
                inc.push(full.id(i), full.point(i), full.weight(i));
            }
            inc
        };
        let backends = [
            IndexBackend::Exact,
            IndexBackend::Ivf(IvfConfig {
                num_clusters: 5,
                kmeans_iters: 4,
                nprobe: 2,
                seed: 8,
            }),
            IndexBackend::Hnsw(HnswConfig {
                m: 6,
                ef_construction: 16,
                ef_search: 12,
                seed: 9,
            }),
            IndexBackend::Quant(QuantConfig {
                ksub: 8,
                train_iters: 4,
                rerank_k: 10, // partial rerank: the code lanes must survive
                seed: 10,
            }),
        ];
        for config in backends {
            let mut live = config.instantiate(base.clone(), 2);
            let state = match (&config, live.as_ref()) {
                (IndexBackend::Exact, _) => ExactBackend::new(base.clone(), 2).export_state(),
                (IndexBackend::Ivf(c), _) => IvfBackend::new(base.clone(), *c).export_state(),
                (IndexBackend::Hnsw(c), _) => HnswBackend::new(base.clone(), *c).export_state(),
                (IndexBackend::Quant(c), _) => QuantBackend::new(base.clone(), *c).export_state(),
            };
            assert_eq!(state.label(), config.label());
            let mut revived = state.instantiate();
            assert_eq!(revived.len(), live.len());
            // searches agree before and after a post-restart insert
            for i in 0..keys.len() {
                assert_eq!(
                    revived.search(keys.point(i), keys.weight(i), 5, None),
                    live.search(keys.point(i), keys.weight(i), 5, None),
                    "{} revived search diverged",
                    config.label()
                );
            }
            assert!(revived.insert(&increment));
            assert!(live.insert(&increment));
            for i in 0..keys.len() {
                assert_eq!(
                    revived.search(keys.point(i), keys.weight(i), 5, None),
                    live.search(keys.point(i), keys.weight(i), 5, None),
                    "{} post-restart insert diverged",
                    config.label()
                );
            }
        }
    }

    #[test]
    fn empty_candidates_yield_empty_results_through_the_trait() {
        let manifold = ProductManifold::new(vec![SubspaceSpec::new(2, 0.0)]);
        let empty = MixedPointSet::new(manifold.clone());
        for backend in [
            IndexBackend::Exact.instantiate(empty.clone(), 1),
            IndexBackend::Ivf(IvfConfig::default()).instantiate(empty.clone(), 1),
            IndexBackend::Hnsw(HnswConfig::default()).instantiate(empty.clone(), 1),
            IndexBackend::Quant(QuantConfig::default()).instantiate(empty.clone(), 1),
        ] {
            assert!(backend.is_empty());
            assert!(backend.search(&[0.0, 0.0], &[1.0], 3, None).is_empty());
            assert!(backend.build_index(&empty, 3, false).is_empty());
        }
    }

    #[test]
    fn zero_k_short_circuits() {
        let keys = random_set(5, 6);
        let cands = random_set(10, 7);
        let backend = ExactBackend::new(cands, 1);
        assert!(backend
            .search(keys.point(0), keys.weight(0), 0, None)
            .is_empty());
        assert!(backend.build_index(&keys, 0, false).is_empty());
    }
}
