//! Deterministic per-component sub-codebooks for quantised postings.
//!
//! Product quantisation needs one small codebook per curvature component.
//! Like the IVF coarse quantiser, each sub-codebook is trained with plain
//! Lloyd k-means in the component's *tangent space* at the origin — the one
//! place the mixed-curvature metric is Euclidean — from the deterministic
//! compat `StdRng`, so identical inputs and seeds always yield identical
//! codebooks (the property the snapshot and insert-vs-bulk parity tests
//! pin). Encoding maps a tangent vector to its nearest sub-centroid, ties
//! broken toward the lowest index, which keeps codes deterministic too.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Sub-centroids per codebook never exceed one byte's worth — codes are
/// stored as `u8`.
pub const MAX_SUB_CENTROIDS: usize = 256;

/// One curvature component's sub-codebook: up to [`MAX_SUB_CENTROIDS`]
/// tangent-space centroids stored as one flat `len × dim` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Codebook {
    dim: usize,
    centroids: Vec<f64>,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl Codebook {
    /// Train a sub-codebook over `data` — `n × dim` tangent vectors stored
    /// flat — with at most `ksub` centroids (capped at the data size and at
    /// [`MAX_SUB_CENTROIDS`]). Empty data yields an untrained codebook that
    /// [`Codebook::is_trained`] reports as such.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn train(data: &[f64], dim: usize, ksub: usize, iters: usize, seed: u64) -> Self {
        assert!(dim > 0, "components have at least one dimension");
        assert_eq!(data.len() % dim, 0, "flat data must be n x dim");
        let n = data.len() / dim;
        if n == 0 {
            return Codebook {
                dim,
                centroids: Vec::new(),
            };
        }
        let point = |i: usize| &data[i * dim..(i + 1) * dim];

        let k = ksub.clamp(1, MAX_SUB_CENTROIDS).min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seeds: Vec<usize> = (0..n).collect();
        seeds.shuffle(&mut rng);
        let mut centroids = Vec::with_capacity(k * dim);
        for &i in seeds.iter().take(k) {
            centroids.extend_from_slice(point(i));
        }

        let mut assignments = vec![0usize; n];
        for _ in 0..iters.max(1) {
            // assign: nearest centroid, first (lowest-index) wins ties
            for (i, a) in assignments.iter_mut().enumerate() {
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for c in 0..k {
                    let d = sq_dist(point(i), &centroids[c * dim..(c + 1) * dim]);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                *a = best;
            }
            // update: cluster means; empty clusters keep their centroid
            let mut sums = vec![0.0; k * dim];
            let mut counts = vec![0usize; k];
            for (i, &c) in assignments.iter().enumerate() {
                counts[c] += 1;
                for (s, v) in sums[c * dim..(c + 1) * dim].iter_mut().zip(point(i)) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for (ci, s) in centroids[c * dim..(c + 1) * dim]
                        .iter_mut()
                        .zip(&sums[c * dim..(c + 1) * dim])
                    {
                        *ci = s / counts[c] as f64;
                    }
                }
            }
        }

        Codebook { dim, centroids }
    }

    /// Rebuild a codebook from snapshot-decoded parts.
    ///
    /// # Panics
    ///
    /// Panics if the flat centroid block is not a multiple of `dim` or
    /// holds more than [`MAX_SUB_CENTROIDS`] centroids — the snapshot
    /// decoder validates both before calling, so this is a backstop.
    pub fn from_parts(dim: usize, centroids: Vec<f64>) -> Self {
        assert!(dim > 0, "components have at least one dimension");
        assert_eq!(centroids.len() % dim, 0, "flat centroids must be len x dim");
        assert!(
            centroids.len() / dim <= MAX_SUB_CENTROIDS,
            "codes are one byte: at most {MAX_SUB_CENTROIDS} sub-centroids"
        );
        Codebook { dim, centroids }
    }

    /// Number of centroids.
    #[inline]
    pub fn len(&self) -> usize {
        self.centroids.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Whether the codebook holds no centroids.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }

    /// Whether training produced any centroids to encode against.
    #[inline]
    pub fn is_trained(&self) -> bool {
        !self.centroids.is_empty()
    }

    /// Dimension of the component this codebook quantises.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Tangent coordinates of centroid `c`.
    #[inline]
    pub fn centroid(&self, c: usize) -> &[f64] {
        &self.centroids[c * self.dim..(c + 1) * self.dim]
    }

    /// The flat `len × dim` centroid block (snapshot encoding).
    #[inline]
    pub fn centroids_flat(&self) -> &[f64] {
        &self.centroids
    }

    /// Code of a tangent vector: the index of its nearest centroid in the
    /// component's Euclidean tangent space, ties broken toward the lowest
    /// index. Corrupt (NaN) distances never win over a real one; an
    /// all-NaN comparison falls back to centroid 0.
    ///
    /// # Panics
    ///
    /// Panics if the codebook is untrained.
    #[inline]
    pub fn encode(&self, tangent: &[f64]) -> u8 {
        assert!(self.is_trained(), "encode needs a trained codebook");
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for c in 0..self.len() {
            let d = sq_dist(tangent, self.centroid(c));
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(points: &[[f64; 2]]) -> Vec<f64> {
        points.iter().flatten().copied().collect()
    }

    #[test]
    fn training_is_deterministic_in_data_and_seed() {
        let data = flat(&[
            [0.1, 0.2],
            [0.12, 0.18],
            [-0.3, 0.4],
            [-0.28, 0.41],
            [0.5, -0.5],
            [0.52, -0.48],
        ]);
        let a = Codebook::train(&data, 2, 3, 6, 7);
        let b = Codebook::train(&data, 2, 3, 6, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.dim(), 2);
        let c = Codebook::train(&data, 2, 3, 6, 8);
        // a different seed may pick different initial centroids; the
        // codebook must still be well-formed
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn encode_picks_the_nearest_centroid_with_lowest_index_ties() {
        let cb = Codebook::from_parts(1, vec![-1.0, 0.0, 1.0]);
        assert_eq!(cb.encode(&[-0.9]), 0);
        assert_eq!(cb.encode(&[0.1]), 1);
        assert_eq!(cb.encode(&[2.0]), 2);
        // -0.5 ties between centroids 0 and 1: lowest index wins
        assert_eq!(cb.encode(&[-0.5]), 0);
        // NaN never beats a real distance; all-NaN falls back to 0
        assert_eq!(cb.encode(&[f64::NAN]), 0);
    }

    #[test]
    fn ksub_is_capped_at_the_data_size_and_a_byte() {
        let data = flat(&[[0.0, 0.0], [1.0, 1.0]]);
        let cb = Codebook::train(&data, 2, 8, 4, 1);
        assert_eq!(cb.len(), 2, "never more centroids than points");
        let cb = Codebook::train(&data, 2, 100_000, 1, 1);
        assert!(cb.len() <= MAX_SUB_CENTROIDS);
    }

    #[test]
    fn empty_data_yields_an_untrained_codebook() {
        let cb = Codebook::train(&[], 3, 4, 4, 1);
        assert!(!cb.is_trained());
        assert!(cb.is_empty());
        assert_eq!(cb.len(), 0);
    }

    #[test]
    fn centroids_round_trip_through_flat_parts() {
        let data = flat(&[[0.1, 0.2], [0.3, -0.1], [0.0, 0.5], [-0.2, -0.2]]);
        let cb = Codebook::train(&data, 2, 2, 5, 3);
        let revived = Codebook::from_parts(cb.dim(), cb.centroids_flat().to_vec());
        assert_eq!(cb, revived);
        for probe in [[0.09, 0.21], [-0.19, -0.18], [0.4, 0.4]] {
            assert_eq!(cb.encode(&probe), revived.encode(&probe));
        }
    }

    #[test]
    #[should_panic(expected = "trained codebook")]
    fn encoding_against_an_untrained_codebook_panics() {
        Codebook::train(&[], 2, 4, 4, 1).encode(&[0.0, 0.0]);
    }
}
