//! The quantised-postings backend: asymmetric table scan + exact rerank.
//!
//! Classic product quantisation assumes a Euclidean (or inner-product)
//! metric; the paper's attention-weighted mixed-curvature similarity is
//! neither, which is why the paper falls back to a parallel exact scan.
//! [`QuantIndex`] adapts PQ to the mixed-curvature metric instead:
//!
//! 1. **Train** one sub-codebook per curvature component in that
//!    component's tangent space ([`Codebook`]), where k-means is sound.
//! 2. **Encode** every ad as one `u8` sub-centroid code plus one `f32`
//!    attention weight per component ([`CodeBlocks`]) — the full-precision
//!    point is only needed again at rerank time.
//! 3. **Search** asymmetrically: the query stays full precision; its
//!    geodesic distance to every sub-centroid *reconstruction* (the
//!    centroid mapped back through `exp0`) is tabulated once per query via
//!    the same Gram-form kernel the exact scan uses, the code lanes are
//!    swept with table lookups, and the best `rerank_k` candidates are
//!    reranked with exact distances through the SoA kernel.
//!
//! Because the rerank reuses the exact kernel and `TopK` contract, a
//! corpus-wide rerank (`rerank_k >= n`) is *bit-identical* to
//! [`crate::ExactBackend`] — the saturation point the parity suite pins,
//! mirroring full-probe IVF and saturated HNSW.

use amcad_manifold::{distance_gram, dot, norm_sq, ProductManifold};

use crate::backend::{AnnBackendState, AnnIndex};
use crate::brute::{Postings, TopK, SCAN_CHUNK};
use crate::points::MixedPointSet;
use crate::quant::codebook::Codebook;
use crate::quant::codes::{AsymmetricTable, CodeBlocks};

/// Configuration of the quantised-postings index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantConfig {
    /// Sub-centroids per component codebook (capped at 256 — codes are one
    /// byte).
    pub ksub: usize,
    /// Lloyd iterations for each tangent-space sub-codebook.
    pub train_iters: usize,
    /// Candidates kept from the approximate table scan and reranked with
    /// exact distances. At or above the corpus size the backend is
    /// bit-identical to the exact scan.
    pub rerank_k: usize,
    /// RNG seed for codebook initialisation (offset per component).
    pub seed: u64,
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig {
            ksub: 16,
            train_iters: 8,
            rerank_k: 48,
            seed: 13,
        }
    }
}

/// The resident state of a [`QuantIndex`], exported for durable snapshots:
/// the candidate set, the configuration, the frozen tangent-space
/// sub-codebooks (flat per component) and the per-component code lanes.
/// Reconstructions, their norms and the `f32` weight lanes are *not* part
/// of the state — they are deterministic functions of the codebooks and
/// the stored points, recomputed on import.
#[derive(Debug, Clone)]
pub struct QuantState {
    /// The indexed candidate set.
    pub candidates: MixedPointSet,
    /// The configuration the index was built with.
    pub config: QuantConfig,
    /// Per-component flat tangent-space centroid blocks
    /// (`len_m × dim_m` each).
    pub codebooks: Vec<Vec<f64>>,
    /// Per-component code lanes, one code per candidate.
    pub codes: Vec<Vec<u8>>,
}

/// A quantised-postings index over a candidate point set.
#[derive(Debug, Clone)]
pub struct QuantIndex {
    candidates: MixedPointSet,
    config: QuantConfig,
    codebooks: Vec<Codebook>,
    /// Per-component flat `len_m × dim_m` centroid reconstructions
    /// (`exp0` of each tangent centroid), derived from the codebooks.
    recons: Vec<Vec<f64>>,
    /// Per-component squared norms of the reconstructions.
    recon_sq_norms: Vec<Vec<f64>>,
    codes: CodeBlocks,
}

/// Per-component training seed: decorrelates the sub-codebooks while
/// keeping every one a pure function of the configured seed.
fn component_seed(seed: u64, m: usize) -> u64 {
    seed.wrapping_add((m as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Train one sub-codebook per component over the tangent vectors.
fn train_codebooks(
    manifold: &ProductManifold,
    tangents: &[Vec<f64>],
    config: QuantConfig,
) -> Vec<Codebook> {
    let mut codebooks = Vec::with_capacity(manifold.num_subspaces());
    for m in 0..manifold.num_subspaces() {
        let range = manifold.range(m);
        let dim = range.len();
        let mut data = Vec::with_capacity(tangents.len() * dim);
        for t in tangents {
            data.extend_from_slice(&t[range.clone()]);
        }
        codebooks.push(Codebook::train(
            &data,
            dim,
            config.ksub,
            config.train_iters,
            component_seed(config.seed, m),
        ));
    }
    codebooks
}

/// Map every centroid back onto the manifold (`exp0` per component) and
/// precompute the reconstructions' squared norms for the Gram-form table
/// build.
fn derive_recons(
    manifold: &ProductManifold,
    codebooks: &[Codebook],
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut recons = Vec::with_capacity(codebooks.len());
    let mut sq_norms = Vec::with_capacity(codebooks.len());
    for (m, cb) in codebooks.iter().enumerate() {
        let kappa = manifold.subspaces()[m].kappa;
        let mut flat = Vec::with_capacity(cb.len() * cb.dim());
        let mut sq = Vec::with_capacity(cb.len());
        for c in 0..cb.len() {
            let recon = amcad_manifold::exp_map_origin(cb.centroid(c), kappa);
            sq.push(norm_sq(&recon));
            flat.extend_from_slice(&recon);
        }
        recons.push(flat);
        sq_norms.push(sq);
    }
    (recons, sq_norms)
}

impl QuantIndex {
    /// Build a quantised index over the candidate set: train the
    /// sub-codebooks, then encode every candidate. An empty candidate set
    /// leaves the codebooks untrained; the first [`QuantIndex::insert`]
    /// batch trains them (with the same seeds a bulk build over that batch
    /// would use, so the two paths produce identical indices).
    pub fn build(candidates: MixedPointSet, config: QuantConfig) -> Self {
        let manifold = candidates.manifold().clone();
        let tangents: Vec<Vec<f64>> = (0..candidates.len())
            .map(|i| manifold.log0(candidates.point(i)))
            .collect();
        let codebooks = train_codebooks(&manifold, &tangents, config);
        let (recons, recon_sq_norms) = derive_recons(&manifold, &codebooks);
        let mut codes = CodeBlocks::new(manifold.num_subspaces());
        let mut point_codes = vec![0u8; manifold.num_subspaces()];
        for (i, t) in tangents.iter().enumerate() {
            for (m, code) in point_codes.iter_mut().enumerate() {
                *code = codebooks[m].encode(&t[manifold.range(m)]);
            }
            codes.push(&point_codes, candidates.weight(i));
        }
        QuantIndex {
            candidates,
            config,
            codebooks,
            recons,
            recon_sq_norms,
            codes,
        }
    }

    /// Incrementally index additional candidates without retraining: each
    /// new point is log-mapped and encoded against the *frozen*
    /// sub-codebooks — the streaming-update path delta publishes use,
    /// symmetric to [`crate::IvfIndex::insert`]'s frozen centroids. An
    /// index built over an empty set trains its codebooks from the first
    /// insert batch.
    ///
    /// # Panics
    ///
    /// Panics if the manifolds differ.
    pub fn insert(&mut self, added: &MixedPointSet) {
        assert_eq!(
            self.candidates.manifold(),
            added.manifold(),
            "inserted points must live on the indexed manifold"
        );
        if added.is_empty() {
            return;
        }
        let manifold = self.candidates.manifold().clone();
        let tangents: Vec<Vec<f64>> = (0..added.len())
            .map(|i| manifold.log0(added.point(i)))
            .collect();
        if self.codebooks.iter().any(|cb| !cb.is_trained()) {
            self.codebooks = train_codebooks(&manifold, &tangents, self.config);
            let (recons, recon_sq_norms) = derive_recons(&manifold, &self.codebooks);
            self.recons = recons;
            self.recon_sq_norms = recon_sq_norms;
        }
        let mut point_codes = vec![0u8; manifold.num_subspaces()];
        for (i, t) in tangents.iter().enumerate() {
            for (m, code) in point_codes.iter_mut().enumerate() {
                *code = self.codebooks[m].encode(&t[manifold.range(m)]);
            }
            self.candidates
                .push(added.id(i), added.point(i), added.weight(i));
            self.codes.push(&point_codes, added.weight(i));
        }
    }

    /// Export the resident state for a durable snapshot — see
    /// [`QuantState`] for what is captured and what is recomputed.
    pub fn export_state(&self) -> QuantState {
        QuantState {
            candidates: self.candidates.clone(),
            config: self.config,
            codebooks: self
                .codebooks
                .iter()
                .map(|cb| cb.centroids_flat().to_vec())
                .collect(),
            codes: (0..self.codes.num_components())
                .map(|m| self.codes.code_lane(m).to_vec())
                .collect(),
        }
    }

    /// Rebuild an index from an exported [`QuantState`], re-deriving the
    /// centroid reconstructions and `f32` weight lanes. The restored index
    /// searches identically to the saved one, and post-restart inserts
    /// encode against the same frozen codebooks an uninterrupted process
    /// would have used.
    ///
    /// The arrays are trusted as-given (a checksummed snapshot format
    /// guards the bytes); only the invariants needed to keep search in
    /// bounds are asserted.
    pub fn from_state(state: QuantState) -> Self {
        let manifold = state.candidates.manifold().clone();
        let mcount = manifold.num_subspaces();
        let n = state.candidates.len();
        assert_eq!(state.codebooks.len(), mcount, "one codebook per component");
        assert_eq!(state.codes.len(), mcount, "one code lane per component");
        let codebooks: Vec<Codebook> = state
            .codebooks
            .into_iter()
            .enumerate()
            .map(|(m, flat)| Codebook::from_parts(manifold.range(m).len(), flat))
            .collect();
        for (m, lane) in state.codes.iter().enumerate() {
            assert_eq!(lane.len(), n, "one code per candidate");
            assert!(
                lane.iter().all(|&c| (c as usize) < codebooks[m].len()),
                "codes must name stored sub-centroids"
            );
        }
        let (recons, recon_sq_norms) = derive_recons(&manifold, &codebooks);
        let weights: Vec<Vec<f32>> = (0..mcount)
            .map(|m| {
                (0..n)
                    .map(|j| state.candidates.weight(j)[m] as f32)
                    .collect()
            })
            .collect();
        let codes = CodeBlocks::from_parts(state.codes, weights);
        QuantIndex {
            candidates: state.candidates,
            config: state.config,
            codebooks,
            recons,
            recon_sq_norms,
            codes,
        }
    }

    /// Number of indexed candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &QuantConfig {
        &self.config
    }

    /// The per-component sub-codebooks.
    pub fn codebooks(&self) -> &[Codebook] {
        &self.codebooks
    }

    /// The quantised posting lanes.
    pub fn codes(&self) -> &CodeBlocks {
        &self.codes
    }

    /// The indexed candidate set.
    pub fn candidates(&self) -> &MixedPointSet {
        &self.candidates
    }

    /// Bytes one ad's *quantised* posting occupies: one `u8` code plus one
    /// `f32` weight per curvature component.
    pub fn quantised_bytes_per_ad(&self) -> usize {
        self.codes.bytes_per_point()
    }

    /// Bytes one ad occupies at full precision: `f64` coordinates over the
    /// whole product manifold plus one `f64` attention weight per
    /// component — what the scan side of every other backend stores.
    pub fn full_precision_bytes_per_ad(&self) -> usize {
        let manifold = self.candidates.manifold();
        std::mem::size_of::<f64>() * (manifold.total_dim() + manifold.num_subspaces())
    }

    /// Build the per-query asymmetric distance table: the query's geodesic
    /// distance to every sub-centroid reconstruction, through the same
    /// Gram-form kernel the exact scan uses. One flat allocation per query.
    fn distance_table(&self, query: &[f64]) -> AsymmetricTable {
        let mcount = self.codebooks.len();
        let manifold = self.candidates.manifold();
        let mut offsets = vec![0usize; mcount + 1];
        for m in 0..mcount {
            offsets[m + 1] = offsets[m] + self.codebooks[m].len();
        }
        let mut entries = vec![0.0f64; offsets[mcount]];
        for m in 0..mcount {
            let qm = manifold.component(query, m);
            let q2 = norm_sq(qm);
            let kappa = manifold.subspaces()[m].kappa;
            let dim = self.codebooks[m].dim();
            for (c, entry) in entries[offsets[m]..offsets[m + 1]].iter_mut().enumerate() {
                let recon = &self.recons[m][c * dim..(c + 1) * dim];
                *entry = distance_gram(q2, self.recon_sq_norms[m][c], dot(qm, recon), kappa);
            }
        }
        AsymmetricTable::from_parts(entries, offsets)
    }

    /// Approximate top-K search: chunked asymmetric table scan over the
    /// code lanes keeping the best `rerank_k` (at least `k`) candidates,
    /// then an exact rerank of that pool through the SoA kernel. Sorted by
    /// increasing *exact* distance with the shared `(distance, id)`
    /// tie-break.
    pub fn search(
        &self,
        query: &[f64],
        query_weight: &[f64],
        k: usize,
        exclude_id: Option<u32>,
    ) -> Postings {
        if self.candidates.is_empty() || k == 0 {
            return Vec::new();
        }
        let n = self.candidates.len();
        let table = self.distance_table(query);

        // stage 1: approximate scan — pool entries are (approx distance,
        // slot); the slot tie-break only matters below the rerank horizon
        let pool_size = self.config.rerank_k.max(k);
        let mut pool = TopK::new(pool_size);
        let mut lane = [0.0f64; SCAN_CHUNK];
        let mut start = 0;
        while start < n {
            let len = SCAN_CHUNK.min(n - start);
            self.codes
                .scan_range_into(&table, query_weight, start, &mut lane[..len]);
            for (jj, &approx) in lane[..len].iter().enumerate() {
                let slot = start + jj;
                if exclude_id == Some(self.candidates.id(slot)) {
                    continue;
                }
                // amcad-lint: allow(alloc-in-hot-loop) — TopK's heap is pre-sized to k+1 at construction and never grows past it
                pool.push(approx, slot as u32);
            }
            start += len;
        }

        // stage 2: exact rerank of the surviving pool
        let slots: Vec<usize> = pool
            .into_sorted()
            .iter()
            .map(|&(slot, _)| slot as usize)
            .collect();
        let blocks = self.candidates.blocks();
        let grams = blocks.query_grams(query);
        let mut exact = vec![0.0f64; slots.len()];
        blocks.scan_indices_into(&grams, query, query_weight, &slots, &mut exact);
        let mut topk = TopK::new(k);
        for (jj, &slot) in slots.iter().enumerate() {
            // amcad-lint: allow(alloc-in-hot-loop) — TopK's heap is pre-sized to k+1 at construction and never grows past it
            topk.push(exact[jj], self.candidates.id(slot));
        }
        topk.into_sorted()
    }

    /// Build a full inverted index by searching every key of `keys`
    /// (delegates to the shared per-key loop in `brute`).
    pub fn build_index(
        &self,
        keys: &MixedPointSet,
        k: usize,
        exclude_same_id: bool,
    ) -> crate::InvertedIndex {
        crate::brute::build_index_with(
            |q, w, k, e| self.search(q, w, k, e),
            self.is_empty(),
            keys,
            k,
            exclude_same_id,
        )
    }
}

/// The quantised-postings backend behind the [`AnnIndex`] seam.
#[derive(Debug, Clone)]
pub struct QuantBackend {
    index: QuantIndex,
}

impl QuantBackend {
    /// Quantise a candidate set under the given configuration.
    pub fn new(candidates: MixedPointSet, config: QuantConfig) -> Self {
        QuantBackend {
            index: QuantIndex::build(candidates, config),
        }
    }

    /// The underlying quantised index (codebooks, code lanes, memory
    /// accounting).
    pub fn quant(&self) -> &QuantIndex {
        &self.index
    }

    /// Wrap an already-built (e.g. snapshot-restored) quantised index.
    pub fn from_index(index: QuantIndex) -> Self {
        QuantBackend { index }
    }

    /// Export the resident state for a durable snapshot (see
    /// [`QuantState`]).
    pub fn export_state(&self) -> AnnBackendState {
        AnnBackendState::Quant(self.index.export_state())
    }
}

impl AnnIndex for QuantBackend {
    fn backend_name(&self) -> &'static str {
        "quant"
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    /// Quant inserts by encoding each new candidate against the frozen
    /// sub-codebooks (see [`QuantIndex::insert`]).
    fn insert(&mut self, added: &MixedPointSet) -> bool {
        self.index.insert(added);
        true
    }

    fn search(
        &self,
        query: &[f64],
        query_weight: &[f64],
        k: usize,
        exclude_id: Option<u32>,
    ) -> Postings {
        self.index.search(query, query_weight, k, exclude_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::build_exact_index;
    use crate::ivf::recall_at_k;
    use crate::test_util::random_set;
    use amcad_manifold::SubspaceSpec;

    #[test]
    fn corpus_wide_rerank_is_bit_identical_to_the_exact_scan() {
        let cands = random_set(80, 1);
        let keys = random_set(15, 2);
        let quant = QuantIndex::build(
            cands.clone(),
            QuantConfig {
                ksub: 8,
                train_iters: 4,
                rerank_k: 80, // the whole corpus survives to the rerank
                seed: 3,
            },
        );
        for i in 0..keys.len() {
            for exclude in [None, Some(keys.id(i))] {
                let got = quant.search(keys.point(i), keys.weight(i), 6, exclude);
                let want =
                    crate::brute::scan_top_k(&cands, keys.point(i), keys.weight(i), 6, exclude);
                assert_eq!(got, want, "key {i}, exclude {exclude:?}");
            }
        }
    }

    #[test]
    fn a_partial_rerank_still_recovers_most_neighbours() {
        let cands = random_set(200, 4);
        let keys = random_set(30, 5);
        let exact = build_exact_index(&keys, &cands, 10, false, 1);
        let quant = QuantIndex::build(
            cands,
            QuantConfig {
                ksub: 16,
                train_iters: 6,
                rerank_k: 40,
                seed: 6,
            },
        );
        let approx = quant.build_index(&keys, 10, false);
        let recall = recall_at_k(&approx, &exact, 10);
        assert!(
            recall > 0.5,
            "rerank_k=40/200 should recover most neighbours, got {recall}"
        );
        assert!(recall <= 1.0 + 1e-12);
    }

    #[test]
    fn building_empty_then_inserting_matches_the_bulk_build() {
        let points = random_set(60, 7);
        let config = QuantConfig {
            ksub: 8,
            train_iters: 5,
            rerank_k: 16,
            seed: 9,
        };
        let bulk = QuantIndex::build(points.clone(), config);
        let mut streamed = QuantIndex::build(MixedPointSet::new(points.manifold().clone()), config);
        assert!(streamed.is_empty());
        streamed.insert(&points);
        assert_eq!(streamed.len(), bulk.len());
        // the first insert batch trains the same codebooks a bulk build
        // trains, so codes and searches are identical
        assert_eq!(streamed.codebooks(), bulk.codebooks());
        assert_eq!(streamed.codes(), bulk.codes());
        let keys = random_set(12, 8);
        for i in 0..keys.len() {
            assert_eq!(
                streamed.search(keys.point(i), keys.weight(i), 5, None),
                bulk.search(keys.point(i), keys.weight(i), 5, None),
            );
        }
    }

    #[test]
    fn inserts_encode_against_frozen_codebooks() {
        let base = random_set(50, 11);
        let extra_full = random_set(62, 11); // same seed: first 50 identical
        let extra = {
            let mut e = MixedPointSet::new(base.manifold().clone());
            for i in 50..extra_full.len() {
                e.push(extra_full.id(i), extra_full.point(i), extra_full.weight(i));
            }
            e
        };
        let config = QuantConfig {
            ksub: 8,
            train_iters: 5,
            rerank_k: 62, // corpus-wide: inserts must be exactly searchable
            seed: 2,
        };
        let mut quant = QuantIndex::build(base, config);
        let frozen = quant.codebooks().to_vec();
        quant.insert(&extra);
        assert_eq!(quant.len(), 62);
        assert_eq!(quant.codebooks(), &frozen[..], "codebooks must not retrain");
        let keys = random_set(12, 12);
        for i in 0..keys.len() {
            let got = quant.search(keys.point(i), keys.weight(i), 5, None);
            let want =
                crate::brute::scan_top_k(&extra_full, keys.point(i), keys.weight(i), 5, None);
            assert_eq!(got, want, "corpus-wide rerank over the union is exact");
        }
    }

    #[test]
    fn exported_state_round_trips_and_post_restart_inserts_stay_deterministic() {
        let base = random_set(50, 14);
        let extra_full = random_set(62, 14); // same seed: first 50 identical
        let extra = {
            let mut e = MixedPointSet::new(base.manifold().clone());
            for i in 50..extra_full.len() {
                e.push(extra_full.id(i), extra_full.point(i), extra_full.weight(i));
            }
            e
        };
        let config = QuantConfig {
            ksub: 8,
            train_iters: 5,
            rerank_k: 12, // partial rerank: code lanes must survive exactly
            seed: 4,
        };
        let mut uninterrupted = QuantIndex::build(base.clone(), config);
        let mut restored = QuantIndex::from_state(QuantIndex::build(base, config).export_state());
        assert_eq!(restored.codebooks(), uninterrupted.codebooks());
        assert_eq!(restored.codes(), uninterrupted.codes());
        let keys = random_set(12, 15);
        for i in 0..keys.len() {
            assert_eq!(
                restored.search(keys.point(i), keys.weight(i), 5, None),
                uninterrupted.search(keys.point(i), keys.weight(i), 5, None),
            );
        }
        uninterrupted.insert(&extra);
        restored.insert(&extra);
        assert_eq!(restored.len(), 62);
        assert_eq!(
            restored.codes(),
            uninterrupted.codes(),
            "post-restart inserts must encode identically"
        );
        for i in 0..keys.len() {
            assert_eq!(
                restored.search(keys.point(i), keys.weight(i), 5, None),
                uninterrupted.search(keys.point(i), keys.weight(i), 5, None),
            );
        }
    }

    #[test]
    fn quantised_postings_are_at_least_four_times_smaller() {
        let quant = QuantIndex::build(random_set(30, 16), QuantConfig::default());
        let quantised = quant.quantised_bytes_per_ad();
        let full = quant.full_precision_bytes_per_ad();
        assert_eq!(quantised, 2 * 5, "u8 code + f32 weight per component");
        assert_eq!(full, 8 * (6 + 2));
        assert!(
            full >= 4 * quantised,
            "quantisation must shrink ads at least 4x ({full} vs {quantised})"
        );
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let manifold = ProductManifold::new(vec![SubspaceSpec::new(2, 0.0)]);
        let empty = MixedPointSet::new(manifold.clone());
        let quant = QuantIndex::build(empty, QuantConfig::default());
        assert!(quant.is_empty());
        assert!(!quant.codebooks()[0].is_trained());
        assert!(quant.search(&[0.0, 0.0], &[1.0], 3, None).is_empty());
        assert!(quant
            .build_index(&MixedPointSet::new(manifold), 3, false)
            .is_empty());
    }

    #[test]
    fn the_backend_wrapper_exposes_the_trait_surface() {
        let cands = random_set(30, 17);
        let mut backend = QuantBackend::new(cands.clone(), QuantConfig::default());
        assert_eq!(backend.backend_name(), "quant");
        assert_eq!(backend.len(), 30);
        let extra = {
            let full = random_set(35, 17);
            let mut e = MixedPointSet::new(cands.manifold().clone());
            for i in 30..full.len() {
                e.push(full.id(i), full.point(i), full.weight(i));
            }
            e
        };
        assert!(backend.insert(&extra), "quant supports incremental inserts");
        assert_eq!(backend.len(), 35);
        let state = backend.export_state();
        assert_eq!(state.label(), "quant");
        let revived = state.instantiate();
        let keys = random_set(8, 18);
        for i in 0..keys.len() {
            assert_eq!(
                revived.search(keys.point(i), keys.weight(i), 4, None),
                backend.search(keys.point(i), keys.weight(i), 4, None),
            );
        }
    }
}
