//! Quantised postings: SoA vector storage, product-quantisation codebooks
//! and the asymmetric-distance backend.
//!
//! A millions-of-ads corpus neither fits nor streams fast as full-precision
//! owned points. This subsystem brings the memory footprint and scan
//! bandwidth down in two layers:
//!
//! * [`soa`] — [`soa::ComponentBlocks`], the contiguous structure-of-arrays
//!   point storage (fixed-stride coordinate block + squared-norm and weight
//!   lanes per curvature component) that *every* backend's distance kernels
//!   now scan through via [`crate::MixedPointSet`],
//! * [`codebook`] — deterministic k-means sub-codebooks, one per curvature
//!   component, trained in each component's tangent space from the compat
//!   `StdRng`,
//! * [`codes`] — the quantised postings themselves: one `u8` code plus one
//!   `f32` attention weight per component per ad, scanned against a
//!   per-query asymmetric distance table built over the mixed-curvature
//!   geodesic,
//! * [`backend`] — [`QuantBackend`], the fourth [`crate::AnnIndex`]
//!   implementation: approximate table scan, exact top-`rerank_k` rerank
//!   (corpus-wide `rerank_k` makes it bit-identical to the exact backend),
//!   incremental insert by nearest-sub-centroid encoding, and snapshot
//!   state export.

pub mod backend;
pub mod codebook;
pub mod codes;
pub mod soa;

pub use backend::{QuantBackend, QuantConfig, QuantIndex, QuantState};
pub use codebook::Codebook;
pub use codes::{AsymmetricTable, CodeBlocks};
