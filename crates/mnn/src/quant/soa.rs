//! Structure-of-arrays point storage: the scan side of [`crate::MixedPointSet`].
//!
//! Every distance the backends evaluate decomposes per curvature component
//! into three Gram quantities — `‖x‖²`, `‖y‖²`, `⟨x, y⟩` — of which the
//! stored-point norms can be precomputed once at insert time
//! ([`amcad_manifold::distance_gram`]). [`ComponentBlocks`] therefore keeps
//! each component's coordinates in its own contiguous fixed-stride block
//! (`n × dim_m`), alongside per-component squared-norm and attention-weight
//! lanes, so the per-candidate inner loop is a unit-stride dot product the
//! compiler can auto-vectorise — no allocation, no AoS pointer chasing.
//!
//! The kernels come in three shapes, all bit-identical to one another:
//!
//! * [`ComponentBlocks::distance_to`] / [`ComponentBlocks::distance_between`]
//!   — single scattered evaluations (HNSW beam hops, IVF residuals),
//! * [`ComponentBlocks::scan_range_into`] — a chunked sweep over a contiguous
//!   candidate range (the exact scan),
//! * [`ComponentBlocks::scan_indices_into`] — a gathered sweep over an index
//!   list (IVF cluster probes, HNSW neighbour batches),
//!
//! the latter two against a per-query [`QueryGrams`] context so the query's
//! own squared norms are hoisted out of the candidate loop.

use amcad_manifold::{distance_gram, dot, norm_sq, ProductManifold};

/// Per-component SoA mirror of a point set: fixed-stride coordinate blocks
/// plus precomputed squared norms and attention weights, one lane per
/// curvature component.
#[derive(Debug, Clone, Default)]
pub struct ComponentBlocks {
    dims: Vec<usize>,
    offsets: Vec<usize>,
    kappas: Vec<f64>,
    coords: Vec<Vec<f64>>,
    sq_norms: Vec<Vec<f64>>,
    weights: Vec<Vec<f64>>,
    len: usize,
}

/// Per-query scan context: the query's squared norm in every component,
/// computed once and reused across the whole candidate sweep.
#[derive(Debug, Clone)]
pub struct QueryGrams {
    q2: Vec<f64>,
}

impl ComponentBlocks {
    /// Empty blocks shaped for `manifold`.
    pub fn new(manifold: &ProductManifold) -> Self {
        let m = manifold.num_subspaces();
        ComponentBlocks {
            dims: manifold.subspaces().iter().map(|s| s.dim).collect(),
            offsets: (0..m).map(|i| manifold.range(i).start).collect(),
            kappas: manifold.subspaces().iter().map(|s| s.kappa).collect(),
            coords: vec![Vec::new(); m],
            sq_norms: vec![Vec::new(); m],
            weights: vec![Vec::new(); m],
            len: 0,
        }
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of curvature components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.dims.len()
    }

    /// Dimension of component `m`.
    #[inline]
    pub fn dim(&self, m: usize) -> usize {
        self.dims[m]
    }

    /// Curvature of component `m`.
    #[inline]
    pub fn kappa(&self, m: usize) -> f64 {
        self.kappas[m]
    }

    /// The contiguous coordinate block of component `m` (`len × dim(m)`).
    #[inline]
    pub fn coords(&self, m: usize) -> &[f64] {
        &self.coords[m]
    }

    /// Component `m` of stored point `j` — a `dim(m)`-long unit-stride slice.
    #[inline]
    pub fn coords_of(&self, m: usize, j: usize) -> &[f64] {
        let d = self.dims[m];
        &self.coords[m][j * d..(j + 1) * d]
    }

    /// Precomputed `‖y_m‖²` of stored point `j`.
    #[inline]
    pub fn sq_norm(&self, m: usize, j: usize) -> f64 {
        self.sq_norms[m][j]
    }

    /// Attention weight of component `m` at stored point `j`.
    #[inline]
    pub fn stored_weight(&self, m: usize, j: usize) -> f64 {
        self.weights[m][j]
    }

    /// Append one point (an AoS slice of the manifold's total dimension)
    /// with its per-component attention weights, splitting it into the
    /// per-component blocks and precomputing its squared norms.
    pub fn push(&mut self, point: &[f64], weight: &[f64]) {
        for m in 0..self.dims.len() {
            let comp = &point[self.offsets[m]..self.offsets[m] + self.dims[m]];
            self.coords[m].extend_from_slice(comp);
            self.sq_norms[m].push(norm_sq(comp));
            self.weights[m].push(weight[m]);
        }
        self.len += 1;
    }

    /// Drop every stored point, keeping the component shape.
    pub fn clear(&mut self) {
        for m in 0..self.dims.len() {
            self.coords[m].clear();
            self.sq_norms[m].clear();
            self.weights[m].clear();
        }
        self.len = 0;
    }

    /// The per-query context for the chunked kernels: the query's squared
    /// norm in every component, computed with the same reduction as the
    /// stored-point norms so identical coordinates give identical bits.
    pub fn query_grams(&self, query: &[f64]) -> QueryGrams {
        let mut q2 = Vec::with_capacity(self.dims.len());
        for m in 0..self.dims.len() {
            q2.push(norm_sq(
                &query[self.offsets[m]..self.offsets[m] + self.dims[m]],
            ));
        }
        QueryGrams { q2 }
    }

    /// Attention-weighted distance of an external query to stored point `j`
    /// — one scattered evaluation, no allocation. `query` is an AoS slice,
    /// `query_weight` one weight per component; the effective component
    /// weight is `query_weight[m] + stored_weight(m, j)`.
    #[inline]
    pub fn distance_to(&self, query: &[f64], query_weight: &[f64], j: usize) -> f64 {
        let mut acc = 0.0;
        for m in 0..self.dims.len() {
            let qm = &query[self.offsets[m]..self.offsets[m] + self.dims[m]];
            let d = distance_gram(
                norm_sq(qm),
                self.sq_norms[m][j],
                dot(qm, self.coords_of(m, j)),
                self.kappas[m],
            );
            acc += (query_weight[m] + self.weights[m][j]) * d;
        }
        acc
    }

    /// Attention-weighted distance between stored point `i` of this block
    /// set and stored point `j` of `other` (same manifold shape) — both
    /// squared norms come precomputed.
    #[inline]
    pub fn distance_between(&self, i: usize, other: &ComponentBlocks, j: usize) -> f64 {
        let mut acc = 0.0;
        for m in 0..self.dims.len() {
            let d = distance_gram(
                self.sq_norms[m][i],
                other.sq_norms[m][j],
                dot(self.coords_of(m, i), other.coords_of(m, j)),
                self.kappas[m],
            );
            acc += (self.weights[m][i] + other.weights[m][j]) * d;
        }
        acc
    }

    /// Chunked sweep over the contiguous candidate range
    /// `start..start + out.len()`: writes each candidate's attention-weighted
    /// distance into `out`, looping component-outer so every inner loop runs
    /// unit-stride over one coordinate block. Bit-identical to calling
    /// [`ComponentBlocks::distance_to`] per candidate.
    pub fn scan_range_into(
        &self,
        grams: &QueryGrams,
        query: &[f64],
        query_weight: &[f64],
        start: usize,
        out: &mut [f64],
    ) {
        out.fill(0.0);
        for m in 0..self.dims.len() {
            let d = self.dims[m];
            let qm = &query[self.offsets[m]..self.offsets[m] + self.dims[m]];
            let q2 = grams.q2[m];
            let kappa = self.kappas[m];
            let block = &self.coords[m][start * d..(start + out.len()) * d];
            let norms = &self.sq_norms[m][start..start + out.len()];
            let weights = &self.weights[m][start..start + out.len()];
            for (jj, o) in out.iter_mut().enumerate() {
                let dist =
                    distance_gram(q2, norms[jj], dot(qm, &block[jj * d..(jj + 1) * d]), kappa);
                *o += (query_weight[m] + weights[jj]) * dist;
            }
        }
    }

    /// Gathered sweep over an arbitrary index list (`out.len() == indices
    /// .len()`): same kernel as [`ComponentBlocks::scan_range_into`] but
    /// following `indices` into the blocks — the shape IVF cluster probes
    /// and HNSW neighbour batches use.
    pub fn scan_indices_into(
        &self,
        grams: &QueryGrams,
        query: &[f64],
        query_weight: &[f64],
        indices: &[usize],
        out: &mut [f64],
    ) {
        debug_assert_eq!(indices.len(), out.len());
        out.fill(0.0);
        for m in 0..self.dims.len() {
            let qm = &query[self.offsets[m]..self.offsets[m] + self.dims[m]];
            let q2 = grams.q2[m];
            let kappa = self.kappas[m];
            for (jj, o) in out.iter_mut().enumerate() {
                let j = indices[jj];
                let dist = distance_gram(
                    q2,
                    self.sq_norms[m][j],
                    dot(qm, self.coords_of(m, j)),
                    kappa,
                );
                *o += (query_weight[m] + self.weights[m][j]) * dist;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcad_manifold::SubspaceSpec;

    fn manifold() -> ProductManifold {
        ProductManifold::new(vec![SubspaceSpec::new(2, -1.0), SubspaceSpec::new(3, 0.7)])
    }

    fn blocks_of(points: &[(Vec<f64>, Vec<f64>)]) -> ComponentBlocks {
        let m = manifold();
        let mut blocks = ComponentBlocks::new(&m);
        for (tangent, weight) in points {
            blocks.push(&m.exp0(tangent), weight);
        }
        blocks
    }

    fn sample() -> ComponentBlocks {
        blocks_of(&[
            (vec![0.1, -0.2, 0.05, 0.1, -0.1], vec![0.6, 0.4]),
            (vec![-0.05, 0.1, 0.2, -0.1, 0.02], vec![0.3, 0.7]),
            (vec![0.25, 0.15, -0.12, 0.07, 0.2], vec![0.5, 0.5]),
            (vec![0.0, 0.0, 0.0, 0.0, 0.0], vec![0.9, 0.1]),
        ])
    }

    #[test]
    fn layout_splits_components_at_fixed_stride() {
        let blocks = sample();
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks.num_components(), 2);
        assert_eq!(blocks.dim(0), 2);
        assert_eq!(blocks.dim(1), 3);
        assert_eq!(blocks.coords(0).len(), 4 * 2);
        assert_eq!(blocks.coords(1).len(), 4 * 3);
        assert_eq!(blocks.coords_of(1, 2).len(), 3);
        assert!((blocks.kappa(0) + 1.0).abs() < 1e-15);
    }

    #[test]
    fn stored_norms_match_a_fresh_reduction() {
        let blocks = sample();
        for j in 0..blocks.len() {
            for m in 0..blocks.num_components() {
                assert_eq!(blocks.sq_norm(m, j), norm_sq(blocks.coords_of(m, j)));
            }
        }
    }

    #[test]
    fn distance_matches_the_reference_weighted_distance() {
        let m = manifold();
        let tangents = [
            vec![0.1, -0.2, 0.05, 0.1, -0.1],
            vec![-0.05, 0.1, 0.2, -0.1, 0.02],
        ];
        let points: Vec<Vec<f64>> = tangents.iter().map(|t| m.exp0(t)).collect();
        let blocks = blocks_of(&[
            (tangents[0].clone(), vec![0.6, 0.4]),
            (tangents[1].clone(), vec![0.3, 0.7]),
        ]);
        let qw = [0.2, 0.8];
        for j in 0..2 {
            let fast = blocks.distance_to(&points[0], &qw, j);
            let w: Vec<f64> = [0.2 + [0.6, 0.3][j], 0.8 + [0.4, 0.7][j]].to_vec();
            let reference = m.weighted_distance(&points[0], &points[j], &w);
            assert!(
                (fast - reference).abs() < 1e-10,
                "j={j}: {fast} vs {reference}"
            );
        }
        // the symmetric member-to-member form agrees with the query form
        let d01 = blocks.distance_between(0, &blocks, 1);
        let via_query = blocks.distance_to(&points[0], &[0.6, 0.4], 1);
        assert_eq!(
            d01, via_query,
            "stored norms must equal the fresh reduction"
        );
    }

    #[test]
    fn chunked_and_gathered_sweeps_are_bit_identical_to_scattered_calls() {
        let m = manifold();
        let blocks = sample();
        let query = m.exp0(&[0.07, 0.21, -0.15, 0.02, 0.11]);
        let qw = [0.45, 0.55];
        let grams = blocks.query_grams(&query);

        let mut chunk = vec![0.0; blocks.len()];
        blocks.scan_range_into(&grams, &query, &qw, 0, &mut chunk);
        for (j, &d) in chunk.iter().enumerate() {
            assert_eq!(d, blocks.distance_to(&query, &qw, j), "range sweep, j={j}");
        }

        let indices = [2usize, 0, 3];
        let mut gathered = vec![0.0; indices.len()];
        blocks.scan_indices_into(&grams, &query, &qw, &indices, &mut gathered);
        for (jj, &j) in indices.iter().enumerate() {
            assert_eq!(
                gathered[jj],
                blocks.distance_to(&query, &qw, j),
                "gathered sweep, j={j}"
            );
        }

        // a mid-block chunk sees the same values as the full sweep
        let mut tail = vec![0.0; 2];
        blocks.scan_range_into(&grams, &query, &qw, 2, &mut tail);
        assert_eq!(&tail[..], &chunk[2..4]);
    }

    #[test]
    fn clear_empties_but_keeps_the_shape() {
        let mut blocks = sample();
        blocks.clear();
        assert!(blocks.is_empty());
        assert_eq!(blocks.num_components(), 2);
        let m = manifold();
        blocks.push(&m.exp0(&[0.1, 0.1, 0.1, 0.1, 0.1]), &[0.5, 0.5]);
        assert_eq!(blocks.len(), 1);
    }
}
