//! Quantised posting storage and the asymmetric table scan.
//!
//! A quantised ad costs one `u8` sub-centroid code plus one `f32` attention
//! weight per curvature component — [`CodeBlocks`] keeps both in per-
//! component SoA lanes, mirroring [`crate::quant::soa::ComponentBlocks`].
//! The scan is *asymmetric* in the product-quantisation sense: the query
//! stays full precision, and its geodesic distance to every sub-centroid's
//! reconstruction is tabulated once per query, so the per-candidate work is
//! two lane loads, one table lookup and one fused multiply-add:
//!
//! `approx[j] = Σ_m (query_weight[m] + weight[m][j]) · table[m][code[m][j]]`
//!
//! — the same attention-weighted sum the exact kernel computes, with the
//! per-component geodesic replaced by its quantised table entry.

/// One query's asymmetric distance table: the geodesic distance from the
/// query to every sub-centroid reconstruction, all components in one flat
/// allocation (`offsets` has `num_components + 1` entries bracketing each
/// component's run) so building it costs a single allocation per query.
#[derive(Debug, Clone)]
pub struct AsymmetricTable {
    entries: Vec<f64>,
    offsets: Vec<usize>,
}

impl AsymmetricTable {
    /// Wrap a prefilled flat table.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` does not bracket `entries` monotonically.
    pub fn from_parts(entries: Vec<f64>, offsets: Vec<usize>) -> Self {
        assert!(!offsets.is_empty(), "offsets bracket at least zero runs");
        assert_eq!(offsets[0], 0, "the first run starts at zero");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert_eq!(
            *offsets.last().unwrap(),
            entries.len(),
            "the last offset must close the entry block"
        );
        AsymmetricTable { entries, offsets }
    }

    /// Number of curvature components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Component `m`'s run of per-centroid distances.
    #[inline]
    pub fn component(&self, m: usize) -> &[f64] {
        &self.entries[self.offsets[m]..self.offsets[m + 1]]
    }

    /// Distance entry of centroid `c` in component `m`.
    #[inline]
    pub fn entry(&self, m: usize, c: usize) -> f64 {
        self.component(m)[c]
    }
}

/// Per-component quantised postings: one code lane and one weight lane per
/// curvature component, all `len` long.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CodeBlocks {
    codes: Vec<Vec<u8>>,
    weights: Vec<Vec<f32>>,
    len: usize,
}

impl CodeBlocks {
    /// Empty lanes for `num_components` curvature components.
    pub fn new(num_components: usize) -> Self {
        CodeBlocks {
            codes: vec![Vec::new(); num_components],
            weights: vec![Vec::new(); num_components],
            len: 0,
        }
    }

    /// Rebuild from snapshot-decoded code lanes plus the stored attention
    /// weights (weights are re-derived from the full-precision candidate
    /// set, not persisted twice).
    ///
    /// # Panics
    ///
    /// Panics if the lanes are ragged or `weights` disagrees on shape —
    /// the snapshot decoder validates first; this is a backstop.
    pub fn from_parts(codes: Vec<Vec<u8>>, weights: Vec<Vec<f32>>) -> Self {
        assert_eq!(codes.len(), weights.len(), "one weight lane per code lane");
        let len = codes.first().map_or(0, Vec::len);
        for (c, w) in codes.iter().zip(&weights) {
            assert_eq!(c.len(), len, "code lanes must be equally long");
            assert_eq!(w.len(), len, "weight lanes must match the code lanes");
        }
        CodeBlocks {
            codes,
            weights,
            len,
        }
    }

    /// Number of stored (encoded) points.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of curvature components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.codes.len()
    }

    /// Code of stored point `j` in component `m`.
    #[inline]
    pub fn code(&self, m: usize, j: usize) -> u8 {
        self.codes[m][j]
    }

    /// Quantised attention weight of stored point `j` in component `m`.
    #[inline]
    pub fn weight(&self, m: usize, j: usize) -> f32 {
        self.weights[m][j]
    }

    /// The full code lane of component `m` (snapshot encoding).
    #[inline]
    pub fn code_lane(&self, m: usize) -> &[u8] {
        &self.codes[m]
    }

    /// Append one encoded point: one code and one attention weight per
    /// component (weights are narrowed to `f32` here — the quantised side
    /// deliberately stores them at half the precision of the exact side).
    pub fn push(&mut self, codes: &[u8], weights: &[f64]) {
        debug_assert_eq!(codes.len(), self.codes.len());
        debug_assert_eq!(weights.len(), self.weights.len());
        for m in 0..self.codes.len() {
            self.codes[m].push(codes[m]);
            self.weights[m].push(weights[m] as f32);
        }
        self.len += 1;
    }

    /// Bytes one quantised ad occupies across all components: one `u8`
    /// code plus one `f32` weight per component.
    #[inline]
    pub fn bytes_per_point(&self) -> usize {
        self.codes.len() * (std::mem::size_of::<u8>() + std::mem::size_of::<f32>())
    }

    /// Chunked asymmetric sweep over the contiguous candidate range
    /// `start..start + out.len()`: writes each candidate's approximate
    /// attention-weighted distance into `out`, looping component-outer so
    /// every inner loop is a unit-stride table-lookup/FMA pass over the
    /// code and weight lanes. `table.entry(m, c)` must hold the query's
    /// geodesic distance to centroid `c`'s reconstruction in component `m`.
    pub fn scan_range_into(
        &self,
        table: &AsymmetricTable,
        query_weight: &[f64],
        start: usize,
        out: &mut [f64],
    ) {
        debug_assert_eq!(table.num_components(), self.codes.len());
        out.fill(0.0);
        for (m, ((lane, weight_lane), &qw)) in self
            .codes
            .iter()
            .zip(&self.weights)
            .zip(query_weight)
            .enumerate()
        {
            let run = table.component(m);
            let codes = &lane[start..start + out.len()];
            let weights = &weight_lane[start..start + out.len()];
            for (jj, o) in out.iter_mut().enumerate() {
                *o += (qw + weights[jj] as f64) * run[codes[jj] as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CodeBlocks {
        let mut blocks = CodeBlocks::new(2);
        blocks.push(&[0, 1], &[0.6, 0.4]);
        blocks.push(&[1, 0], &[0.3, 0.7]);
        blocks.push(&[2, 1], &[0.5, 0.5]);
        blocks
    }

    #[test]
    fn lanes_grow_in_lockstep() {
        let blocks = sample();
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks.num_components(), 2);
        assert_eq!(blocks.code(0, 2), 2);
        assert_eq!(blocks.code(1, 2), 1);
        assert_eq!(blocks.weight(0, 1), 0.3f32);
        assert_eq!(blocks.code_lane(0), &[0, 1, 2]);
    }

    #[test]
    fn the_scan_is_the_weighted_table_sum() {
        let blocks = sample();
        let table = AsymmetricTable::from_parts(vec![0.1, 0.2, 0.3, 1.0, 2.0], vec![0, 3, 5]);
        assert_eq!(table.num_components(), 2);
        assert_eq!(table.component(1), &[1.0, 2.0]);
        let qw = [0.25, 0.75];
        let mut out = vec![0.0; 3];
        blocks.scan_range_into(&table, &qw, 0, &mut out);
        for (j, &got) in out.iter().enumerate() {
            let mut want = 0.0;
            for (m, &w) in qw.iter().enumerate() {
                want +=
                    (w + blocks.weight(m, j) as f64) * table.entry(m, blocks.code(m, j) as usize);
            }
            assert_eq!(got, want, "j={j}");
        }
        // a mid-range chunk sees the same values as the full sweep
        let mut tail = vec![0.0; 2];
        blocks.scan_range_into(&table, &qw, 1, &mut tail);
        assert_eq!(&tail[..], &out[1..3]);
    }

    #[test]
    #[should_panic(expected = "close the entry block")]
    fn mismatched_table_offsets_are_rejected() {
        AsymmetricTable::from_parts(vec![0.1, 0.2], vec![0, 3]);
    }

    #[test]
    fn quantised_points_cost_five_bytes_per_component() {
        let blocks = sample();
        assert_eq!(blocks.bytes_per_point(), 2 * 5);
    }

    #[test]
    fn parts_round_trip() {
        let blocks = sample();
        let revived = CodeBlocks::from_parts(
            (0..2).map(|m| blocks.code_lane(m).to_vec()).collect(),
            (0..2)
                .map(|m| (0..3).map(|j| blocks.weight(m, j)).collect())
                .collect(),
        );
        assert_eq!(blocks, revived);
    }

    #[test]
    #[should_panic(expected = "equally long")]
    fn ragged_lanes_are_rejected() {
        CodeBlocks::from_parts(vec![vec![0, 1], vec![0]], vec![vec![0.5, 0.5], vec![0.5]]);
    }
}
