//! Hierarchical navigable-small-world (HNSW) search in mixed-curvature
//! space.
//!
//! The exact backend scans every candidate per query; IVF prunes the scan
//! with a coarse tangent-space quantisation built once, offline. HNSW is
//! the third point on that frontier and the first backend that is
//! *natively incremental*: the index is a layered proximity graph and
//! **insertion is construction** — a bulk build is nothing but a sequence
//! of single-point inserts, so the streaming [`HnswIndex::insert`] seam
//! and the offline build share one code path (and are tested to produce
//! the same graph).
//!
//! The structure follows Malkov & Yashunin (2018), with the mixed-curvature
//! attention-weighted distance of [`MixedPointSet`] as the metric
//! throughout — no tangent-space proxy, unlike IVF's coarse quantiser:
//!
//! * every node is assigned a level from a geometric distribution
//!   (deterministically, from the compat [`StdRng`] seeded by
//!   [`HnswConfig::seed`] — equal seeds and insertion order reproduce the
//!   graph bit for bit),
//! * each layer is a navigable small-world graph: search greedily descends
//!   from the top layer's entry point, then runs a beam search of width
//!   `ef` on layer 0,
//! * neighbour lists are capped (`M` on upper layers, `2·M` on layer 0)
//!   and pruned with the diversity heuristic — a candidate closer to an
//!   already chosen neighbour than to the base point is redundant and gets
//!   kept only as backfill (keep-pruned-connections), which preserves
//!   connectivity on clustered corpora.
//!
//! `ef_search` is the recall/latency knob: wider beams visit more of the
//! graph. At the saturation point ([`HnswConfig::saturated`]) the layer-0
//! graph is complete and the beam covers the whole corpus, making search
//! provably exhaustive — the HNSW analogue of probing every IVF cluster,
//! which is what lets the parity suites compare it bit-for-bit against the
//! exact scan.
//!
//! NaN distances (corrupt points) are normalised to `+inf` at every
//! comparison site, so graph construction, beam search and result ordering
//! are panic-free total orders — no `partial_cmp().unwrap()` anywhere.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::brute::{InvertedIndex, Postings, TopK};
use crate::points::MixedPointSet;

/// Configuration of the HNSW graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswConfig {
    /// Maximum links per node on the upper layers (layer 0 allows `2·m`).
    /// Also sets the level-sampling rate: levels are geometric with mean
    /// `1 / ln(m)`.
    pub m: usize,
    /// Beam width while inserting — how many candidates a new node
    /// considers linking to. Larger builds a better graph, slower.
    pub ef_construction: usize,
    /// Beam width while searching — the recall/latency knob. Clamped up
    /// to `k` per query so a narrow beam can never truncate a result set.
    pub ef_search: usize,
    /// Seed of the deterministic level-sampling RNG.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 80,
            ef_search: 48,
            seed: 0x45f,
        }
    }
}

impl HnswConfig {
    /// The same graph parameters with a different search beam width — the
    /// sweep knob of the recall/latency frontier benchmarks.
    pub fn with_ef_search(mut self, ef_search: usize) -> Self {
        self.ef_search = ef_search;
        self
    }

    /// A configuration that is provably exhaustive for corpora of up to
    /// `n` candidates: `m ≥ n` means neighbour lists are never pruned (the
    /// layer-0 graph stays complete) and `ef ≥ n` means the beam covers
    /// every node, so search degenerates to an exact scan — the HNSW
    /// analogue of full-probe IVF. Parity tests and tiny corpora only;
    /// real deployments want the sub-linear defaults.
    pub fn saturated(n: usize) -> HnswConfig {
        let n = n.max(1);
        HnswConfig {
            m: n,
            ef_construction: n,
            ef_search: n,
            ..HnswConfig::default()
        }
    }
}

/// A `(distance, slot)` pair with the total order every queue in this
/// module uses: distance first (NaN already normalised to `+inf` at the
/// construction site), slot as the deterministic tie-break — the same
/// `(distance, id)`-style ordering as the exact scan's `TopK`, so equal
/// distances never make results depend on traversal order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct DistSlot {
    dist: f64,
    slot: u32,
}

impl Eq for DistSlot {}

impl Ord for DistSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.slot.cmp(&other.slot))
    }
}

impl PartialOrd for DistSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Epoch-stamped visited marks: one query allocates the stamp array once
/// and each layer's beam search "clears" it by bumping the epoch — O(1)
/// per layer instead of zeroing an O(n) bitmap per `search_layer` call.
#[derive(Debug, Clone, Default)]
struct VisitedSet {
    epoch: u32,
    stamp: Vec<u32>,
}

impl VisitedSet {
    /// Start a fresh visited scope over `n` slots.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // wrapped: stale stamps could collide with the new epoch
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Mark `slot` visited; returns whether it already was in this scope.
    fn visit(&mut self, slot: u32) -> bool {
        let s = &mut self.stamp[slot as usize];
        if *s == self.epoch {
            true
        } else {
            *s = self.epoch;
            false
        }
    }
}

/// The full resident state of an [`HnswIndex`], exported for durable
/// snapshots: the candidate set, the configuration, the level-sampling
/// RNG state, and the graph itself (entry point, node levels, links).
///
/// The RNG *state* — not the seed — is what makes the round trip exact
/// for a live index: the resident generator has already advanced past
/// one draw per inserted node, so a restored index continues the same
/// level sequence and post-restart [`HnswIndex::insert`]s build the
/// graph an uninterrupted process would have built, bit for bit.
#[derive(Debug, Clone)]
pub struct HnswState {
    /// The indexed candidate set.
    pub candidates: MixedPointSet,
    /// The configuration the graph was built with.
    pub config: HnswConfig,
    /// The level-sampling RNG's internal state (xoshiro256++ words).
    pub rng_state: [u64; 4],
    /// Slot of the entry point; `None` iff the index is empty.
    pub entry: Option<usize>,
    /// Top layer of each node, one entry per candidate.
    pub node_level: Vec<usize>,
    /// `links[slot][layer]` — neighbour slots per node per layer.
    pub links: Vec<Vec<Vec<u32>>>,
}

/// An HNSW graph over a candidate point set (see the module docs).
#[derive(Debug, Clone)]
pub struct HnswIndex {
    candidates: MixedPointSet,
    config: HnswConfig,
    /// Level-sampling RNG. Lives in the index so a bulk build and a later
    /// stream of [`HnswIndex::insert`] calls draw one deterministic
    /// sequence — building over a corpus and building over a prefix then
    /// inserting the rest produce the *same graph*.
    rng: StdRng,
    /// Slot of the entry point (the highest-level node); `None` iff empty.
    entry: Option<usize>,
    /// Top layer of each node.
    node_level: Vec<usize>,
    /// `links[slot][layer]` — neighbour slots of `slot` on `layer`, for
    /// layers `0..=node_level[slot]`.
    links: Vec<Vec<Vec<u32>>>,
}

impl HnswIndex {
    /// Build a graph over a candidate set by streaming every point through
    /// the insert path — bulk construction *is* incremental insertion (the
    /// owned set is installed wholesale instead of re-copied point by
    /// point; a not-yet-wired slot is unreachable until `insert_slot`
    /// links it, so the wiring order is identical to streaming inserts).
    pub fn build(candidates: MixedPointSet, config: HnswConfig) -> Self {
        let n = candidates.len();
        let mut index = HnswIndex {
            candidates,
            config,
            rng: StdRng::seed_from_u64(config.seed),
            entry: None,
            node_level: Vec::with_capacity(n),
            links: Vec::with_capacity(n),
        };
        for slot in 0..n {
            index.insert_slot(slot);
        }
        index
    }

    /// Incrementally index additional candidates: each point is inserted
    /// through exactly the construction code path, so inserted candidates
    /// are immediately searchable and indistinguishable from bulk-built
    /// ones (given the same overall insertion order).
    ///
    /// # Panics
    ///
    /// Panics if the manifolds differ.
    pub fn insert(&mut self, added: &MixedPointSet) {
        assert_eq!(
            self.candidates.manifold(),
            added.manifold(),
            "inserted points must live on the indexed manifold"
        );
        for p in 0..added.len() {
            let slot = self.candidates.len();
            self.candidates
                .push(added.id(p), added.point(p), added.weight(p));
            self.insert_slot(slot);
        }
    }

    /// Export the full resident state for a durable snapshot — see
    /// [`HnswState`] for why the RNG state (not the seed) is captured.
    pub fn export_state(&self) -> HnswState {
        HnswState {
            candidates: self.candidates.clone(),
            config: self.config,
            rng_state: self.rng.state(),
            entry: self.entry,
            node_level: self.node_level.clone(),
            links: self.links.clone(),
        }
    }

    /// Rebuild an index from an exported [`HnswState`]. The restored
    /// index searches identically to the saved one, and — because the
    /// RNG resumes mid-stream — subsequent [`HnswIndex::insert`]s extend
    /// the graph exactly as the never-saved index would have.
    ///
    /// The graph arrays are trusted as-given (a checksummed snapshot
    /// format guards the bytes); only the structural invariants needed
    /// for memory safety are asserted.
    pub fn from_state(state: HnswState) -> Self {
        let n = state.candidates.len();
        assert_eq!(state.node_level.len(), n, "one level per candidate");
        assert_eq!(state.links.len(), n, "one link table per candidate");
        assert!(
            state.entry.is_none() == (n == 0) && state.entry.is_none_or(|e| e < n),
            "entry point must name a stored slot exactly when non-empty"
        );
        HnswIndex {
            candidates: state.candidates,
            config: state.config,
            rng: StdRng::from_state(state.rng_state),
            entry: state.entry,
            node_level: state.node_level,
            links: state.links,
        }
    }

    /// Number of indexed candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The configuration the graph was built with.
    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// Top layer of the hierarchy (0 for an empty or single-level graph).
    pub fn max_level(&self) -> usize {
        self.entry.map_or(0, |e| self.node_level[e])
    }

    /// Links of node `slot` on `layer` (diagnostics and tests).
    pub fn neighbours(&self, slot: usize, layer: usize) -> &[u32] {
        &self.links[slot][layer]
    }

    /// Distance of an external query to stored slot `j`, with NaN
    /// normalised to `+inf` so it can never head a queue (matching the
    /// exact scan's `TopK` normalisation).
    #[inline]
    fn slot_distance(&self, query: &[f64], query_weight: &[f64], j: usize) -> f64 {
        let d = self.candidates.distance_to(query, query_weight, j);
        if d.is_nan() {
            f64::INFINITY
        } else {
            d
        }
    }

    /// Distance between two stored slots, NaN-normalised like
    /// [`HnswIndex::slot_distance`].
    #[inline]
    fn link_distance(&self, i: usize, j: usize) -> f64 {
        let d = self.candidates.distance_between(i, &self.candidates, j);
        if d.is_nan() {
            f64::INFINITY
        } else {
            d
        }
    }

    /// Maximum neighbour-list length on `layer`.
    #[inline]
    fn layer_cap(&self, layer: usize) -> usize {
        let m = self.config.m.max(1);
        if layer == 0 {
            2 * m
        } else {
            m
        }
    }

    /// Draw the level of the next inserted node: geometric with rate
    /// `1 / ln(m)`, from the index-resident deterministic RNG.
    fn sample_level(&mut self) -> usize {
        let mult = 1.0 / (self.config.m.max(2) as f64).ln();
        let u: f64 = self.rng.gen(); // in [0, 1), so 1 - u is in (0, 1]
        (-(1.0 - u).ln() * mult) as usize
    }

    /// The beam search of one layer: explore from `entries`, keeping the
    /// `ef` best `(distance, slot)` pairs seen. Returns them sorted
    /// ascending. `visited` is a reusable scratch bitmap.
    ///
    /// Each hop evaluates the popped node's unvisited neighbours as one
    /// gathered SoA sweep (`ComponentBlocks::scan_indices_into`) against
    /// the query's hoisted Gram context — bit-identical to per-neighbour
    /// scattered calls, but the inner distance loops run unit-stride over
    /// the coordinate blocks.
    fn search_layer(
        &self,
        query: &[f64],
        query_weight: &[f64],
        entries: &[DistSlot],
        ef: usize,
        layer: usize,
        visited: &mut VisitedSet,
    ) -> Vec<DistSlot> {
        let ef = ef.max(1);
        visited.begin(self.candidates.len());
        let blocks = self.candidates.blocks();
        let grams = blocks.query_grams(query);
        // hoisted per-call scratch: one slot batch and one distance lane,
        // both bounded by the layer's neighbour-list cap
        let widest = self.layer_cap(layer);
        let mut batch: Vec<usize> = Vec::with_capacity(widest);
        let mut lane: Vec<f64> = Vec::with_capacity(widest);
        // `best` is hard-bounded by ef (+1 transiently); `frontier`
        // usually stays near ef too — pre-size both so the search loop
        // allocates only when the expansion genuinely outgrows ef
        let mut frontier: BinaryHeap<Reverse<DistSlot>> = BinaryHeap::with_capacity(ef + 1);
        let mut best: BinaryHeap<DistSlot> = BinaryHeap::with_capacity(ef + 1); // max-heap: worst kept on top
        for &e in entries {
            if visited.visit(e.slot) {
                continue;
            }
            frontier.push(Reverse(e));
            best.push(e);
            if best.len() > ef {
                best.pop();
            }
        }
        while let Some(Reverse(current)) = frontier.pop() {
            if best.len() >= ef {
                let worst = best.peek().expect("best is non-empty here");
                if current.dist > worst.dist {
                    break; // every remaining frontier entry is farther still
                }
            }
            batch.clear();
            for &nb in &self.links[current.slot as usize][layer] {
                if visited.visit(nb) {
                    continue;
                }
                // amcad-lint: allow(alloc-in-hot-loop) — batch is pre-sized to the layer cap, which bounds every neighbour list
                batch.push(nb as usize);
            }
            if batch.is_empty() {
                continue;
            }
            lane.resize(batch.len(), 0.0);
            blocks.scan_indices_into(&grams, query, query_weight, &batch, &mut lane);
            for (jj, &nb) in batch.iter().enumerate() {
                let d = lane[jj];
                let node = DistSlot {
                    dist: if d.is_nan() { f64::INFINITY } else { d },
                    slot: nb as u32,
                };
                if best.len() < ef {
                    best.push(node);
                    frontier.push(Reverse(node));
                } else if node < *best.peek().expect("best is full here") {
                    best.pop();
                    best.push(node);
                    frontier.push(Reverse(node));
                }
            }
        }
        best.into_sorted_vec()
    }

    /// The diversity heuristic (keep-pruned-connections variant): walk the
    /// candidates in ascending `(distance, slot)` order, keep one unless it
    /// sits closer to an already kept neighbour than to the base point
    /// (then it is redundant — the kept neighbour already routes to it),
    /// and backfill with the pruned ones up to `m` so clustered corpora
    /// keep their links.
    fn select_neighbours(&self, sorted: &[DistSlot], m: usize) -> Vec<u32> {
        let mut kept: Vec<DistSlot> = Vec::with_capacity(m.min(sorted.len()));
        let mut pruned: Vec<u32> = Vec::new();
        for &c in sorted {
            if kept.len() >= m {
                break;
            }
            let redundant = kept
                .iter()
                .any(|&r| self.link_distance(c.slot as usize, r.slot as usize) < c.dist);
            if redundant {
                pruned.push(c.slot);
            } else {
                kept.push(c);
            }
        }
        let mut out: Vec<u32> = kept.into_iter().map(|c| c.slot).collect();
        for slot in pruned {
            if out.len() >= m {
                break;
            }
            out.push(slot);
        }
        out
    }

    /// Re-select the neighbour list of `node` on `layer` when a backlink
    /// pushed it over the layer cap.
    fn shrink_links(&mut self, node: usize, layer: usize) {
        let cap = self.layer_cap(layer);
        if self.links[node][layer].len() <= cap {
            return;
        }
        let mut cands: Vec<DistSlot> = self.links[node][layer]
            .iter()
            .map(|&nb| DistSlot {
                dist: self.link_distance(node, nb as usize),
                slot: nb,
            })
            .collect();
        cands.sort_unstable();
        self.links[node][layer] = self.select_neighbours(&cands, cap);
    }

    /// Wire the (already stored) point at `slot` into the graph — the one
    /// code path behind both bulk builds and streaming inserts.
    fn insert_slot(&mut self, slot: usize) {
        let level = self.sample_level();
        self.node_level.push(level);
        self.links.push(vec![Vec::new(); level + 1]);
        debug_assert_eq!(self.links.len(), slot + 1);
        let Some(entry) = self.entry else {
            self.entry = Some(slot); // the first node seeds the hierarchy
            return;
        };
        // the query is the new point itself; copied out so the graph can
        // be mutated while searching with it
        let query = self.candidates.point(slot).to_vec();
        let weight = self.candidates.weight(slot).to_vec();
        let top = self.node_level[entry];
        let mut entries = vec![DistSlot {
            dist: self.slot_distance(&query, &weight, entry),
            slot: entry as u32,
        }];
        let mut visited = VisitedSet::default();
        // greedy descent through the layers above the new node's level
        for layer in ((level + 1)..=top).rev() {
            let found = self.search_layer(&query, &weight, &entries, 1, layer, &mut visited);
            if let Some(&nearest) = found.first() {
                entries = vec![nearest];
            }
        }
        // beam-search every shared layer, linking bidirectionally and
        // carrying the result set down as the next layer's entry points
        let ef = self.config.ef_construction.max(1);
        for layer in (0..=level.min(top)).rev() {
            let found = self.search_layer(&query, &weight, &entries, ef, layer, &mut visited);
            let selected = self.select_neighbours(&found, self.config.m.max(1));
            self.links[slot][layer] = selected.clone();
            for nb in selected {
                self.links[nb as usize][layer].push(slot as u32);
                self.shrink_links(nb as usize, layer);
            }
            entries = found;
        }
        if level > top {
            self.entry = Some(slot); // the hierarchy grew a layer
        }
    }

    /// Approximate top-K search: greedy descent to layer 0, a beam of
    /// width `max(ef_search, k)` there, then the shared `TopK` cut — so
    /// result ordering (ascending `(distance, id)`, NaN as `+inf`) is
    /// identical to the exact scan's. `exclude_id` is honoured at
    /// collection time: excluded nodes still route the search (one extra
    /// beam slot covers the hit they would occupy).
    pub fn search(
        &self,
        query: &[f64],
        query_weight: &[f64],
        k: usize,
        exclude_id: Option<u32>,
    ) -> Postings {
        if self.candidates.is_empty() || k == 0 {
            return Vec::new();
        }
        let entry = self.entry.expect("a non-empty index has an entry point");
        // single-slot buffer reused across the layer descent instead of
        // a fresh one-element Vec per layer
        let mut entries = Vec::with_capacity(1);
        entries.push(DistSlot {
            dist: self.slot_distance(query, query_weight, entry),
            slot: entry as u32,
        });
        let mut visited = VisitedSet::default();
        for layer in (1..=self.node_level[entry]).rev() {
            let found = self.search_layer(query, query_weight, &entries, 1, layer, &mut visited);
            if let Some(&nearest) = found.first() {
                entries.clear();
                entries.push(nearest);
            }
        }
        let ef = self
            .config
            .ef_search
            .max(k.saturating_add(usize::from(exclude_id.is_some())));
        let found = self.search_layer(query, query_weight, &entries, ef, 0, &mut visited);
        let mut topk = TopK::new(k);
        for c in found {
            let id = self.candidates.id(c.slot as usize);
            if exclude_id == Some(id) {
                continue;
            }
            // amcad-lint: allow(alloc-in-hot-loop) — TopK's heap is pre-sized to k+1 at construction and never grows past it
            topk.push(c.dist, id);
        }
        topk.into_sorted()
    }

    /// Build a full inverted index by searching every key of `keys`
    /// (delegates to the shared per-key loop in `brute`).
    pub fn build_index(
        &self,
        keys: &MixedPointSet,
        k: usize,
        exclude_same_id: bool,
    ) -> InvertedIndex {
        crate::brute::build_index_with(
            |q, w, k, e| self.search(q, w, k, e),
            self.is_empty(),
            keys,
            k,
            exclude_same_id,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::build_exact_index;
    use crate::ivf::recall_at_k;
    use crate::test_util::random_set;
    use amcad_manifold::{ProductManifold, SubspaceSpec};

    #[test]
    fn saturated_graph_search_is_bitwise_identical_to_the_exact_scan() {
        let cands = random_set(60, 1);
        let keys = random_set(15, 2);
        let exact = build_exact_index(&keys, &cands, 6, false, 1);
        let hnsw = HnswIndex::build(cands, HnswConfig::saturated(60));
        let approx = hnsw.build_index(&keys, 6, false);
        assert_eq!(exact.len(), approx.len());
        for (key, postings) in exact.iter() {
            assert_eq!(
                approx.get(*key),
                Some(postings),
                "saturated HNSW must reproduce exact postings (ids and distances) for key {key}"
            );
        }
    }

    #[test]
    fn self_exclusion_works_and_excluded_nodes_still_route() {
        let set = random_set(50, 3);
        let hnsw = HnswIndex::build(set.clone(), HnswConfig::saturated(50));
        let index = hnsw.build_index(&set, 4, true);
        let exact = build_exact_index(&set, &set, 4, true, 1);
        for i in 0..set.len() {
            let id = set.id(i);
            let postings = index.get(id).unwrap();
            assert!(postings.iter().all(|(c, _)| *c != id));
            assert_eq!(postings, exact.get(id).unwrap());
        }
    }

    #[test]
    fn bulk_build_and_streaming_inserts_produce_the_same_graph() {
        // same overall insertion order + same seed → the RNG draws the
        // same level sequence → identical graphs, not merely similar ones
        let union = random_set(80, 4);
        let base = union.filtered(|id| id < 50);
        let mut increment = MixedPointSet::new(union.manifold().clone());
        for i in 50..union.len() {
            increment.push(union.id(i), union.point(i), union.weight(i));
        }
        let config = HnswConfig {
            m: 6,
            ef_construction: 20,
            ef_search: 20,
            seed: 9,
        };
        let bulk = HnswIndex::build(union.clone(), config);
        let mut streamed = HnswIndex::build(base, config);
        streamed.insert(&increment);
        assert_eq!(streamed.len(), bulk.len());
        assert_eq!(streamed.max_level(), bulk.max_level());
        for slot in 0..bulk.len() {
            for layer in 0..=bulk.node_level[slot] {
                assert_eq!(
                    streamed.neighbours(slot, layer),
                    bulk.neighbours(slot, layer),
                    "graph diverged at slot {slot}, layer {layer}"
                );
            }
        }
        let keys = random_set(12, 5);
        for i in 0..keys.len() {
            assert_eq!(
                streamed.search(keys.point(i), keys.weight(i), 5, None),
                bulk.search(keys.point(i), keys.weight(i), 5, None),
            );
        }
    }

    #[test]
    fn default_config_keeps_high_recall_on_a_real_sized_corpus() {
        let cands = random_set(300, 6);
        let keys = random_set(30, 7);
        let exact = build_exact_index(&keys, &cands, 10, false, 1);
        let hnsw = HnswIndex::build(cands, HnswConfig::default());
        let approx = hnsw.build_index(&keys, 10, false);
        let recall = recall_at_k(&approx, &exact, 10);
        assert!(
            recall >= 0.8,
            "default HNSW should keep recall@10 >= 0.8, got {recall:.3}"
        );
        // a member query's nearest neighbour is itself
        let hits = hnsw.search(keys.point(0), keys.weight(0), 3, None);
        assert_eq!(hits.len(), 3);
        assert!(hits.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn the_hierarchy_actually_grows_levels() {
        // low m → high level-sampling rate → multi-layer graph
        let cands = random_set(200, 8);
        let hnsw = HnswIndex::build(
            cands,
            HnswConfig {
                m: 4,
                ef_construction: 24,
                ef_search: 24,
                seed: 21,
            },
        );
        assert!(
            hnsw.max_level() >= 1,
            "200 nodes at m=4 should produce at least two layers"
        );
        // every node respects its layer caps after all the backlinking
        for slot in 0..hnsw.len() {
            for layer in 0..=hnsw.node_level[slot] {
                assert!(hnsw.neighbours(slot, layer).len() <= hnsw.layer_cap(layer));
            }
        }
    }

    #[test]
    fn exported_state_round_trips_and_post_restart_inserts_stay_deterministic() {
        // build over a prefix, export/import, then insert the rest: the
        // restored index must equal BOTH the uninterrupted streaming
        // build and the bulk build over the union — graph and searches.
        // The resident RNG state is what makes this hold; re-seeding
        // would replay the level sequence from the start and diverge.
        let union = random_set(80, 14);
        let base = union.filtered(|id| id < 50);
        let mut increment = MixedPointSet::new(union.manifold().clone());
        for i in 50..union.len() {
            increment.push(union.id(i), union.point(i), union.weight(i));
        }
        let config = HnswConfig {
            m: 6,
            ef_construction: 20,
            ef_search: 20,
            seed: 31,
        };
        let mut uninterrupted = HnswIndex::build(base.clone(), config);
        let mut restored = HnswIndex::from_state(HnswIndex::build(base, config).export_state());
        // restored searches match the saved index before any insert
        let keys = random_set(12, 15);
        for i in 0..keys.len() {
            assert_eq!(
                restored.search(keys.point(i), keys.weight(i), 5, None),
                uninterrupted.search(keys.point(i), keys.weight(i), 5, None),
            );
        }
        uninterrupted.insert(&increment);
        restored.insert(&increment);
        let bulk = HnswIndex::build(union, config);
        assert_eq!(restored.len(), bulk.len());
        assert_eq!(restored.max_level(), bulk.max_level());
        for slot in 0..bulk.len() {
            for layer in 0..=bulk.node_level[slot] {
                assert_eq!(
                    restored.neighbours(slot, layer),
                    bulk.neighbours(slot, layer),
                    "post-restart graph diverged at slot {slot}, layer {layer}"
                );
            }
        }
        for i in 0..keys.len() {
            let want = uninterrupted.search(keys.point(i), keys.weight(i), 5, None);
            assert_eq!(
                restored.search(keys.point(i), keys.weight(i), 5, None),
                want
            );
            assert_eq!(bulk.search(keys.point(i), keys.weight(i), 5, None), want);
        }
    }

    #[test]
    fn empty_index_state_round_trips() {
        let manifold = ProductManifold::new(vec![SubspaceSpec::new(2, 0.0)]);
        let empty = HnswIndex::build(MixedPointSet::new(manifold), HnswConfig::default());
        let restored = HnswIndex::from_state(empty.export_state());
        assert!(restored.is_empty());
        assert!(restored.search(&[0.0, 0.0], &[1.0], 3, None).is_empty());
    }

    #[test]
    fn equal_seeds_reproduce_the_index_exactly() {
        let cands = random_set(70, 9);
        let keys = random_set(10, 10);
        let a = HnswIndex::build(cands.clone(), HnswConfig::default());
        let b = HnswIndex::build(cands, HnswConfig::default());
        for i in 0..keys.len() {
            assert_eq!(
                a.search(keys.point(i), keys.weight(i), 6, None),
                b.search(keys.point(i), keys.weight(i), 6, None),
            );
        }
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let manifold = ProductManifold::new(vec![SubspaceSpec::new(2, 0.0)]);
        let empty = MixedPointSet::new(manifold.clone());
        let mut hnsw = HnswIndex::build(empty.clone(), HnswConfig::default());
        assert!(hnsw.is_empty());
        assert!(hnsw.search(&[0.0, 0.0], &[1.0], 3, None).is_empty());
        assert!(hnsw.build_index(&empty, 3, false).is_empty());
        // inserting into an empty index seeds the entry point
        let mut points = MixedPointSet::new(manifold.clone());
        points.push(1, &[0.1, 0.0], &[1.0]);
        points.push(2, &[0.0, 0.2], &[1.0]);
        hnsw.insert(&points);
        assert_eq!(hnsw.len(), 2);
        let hits = hnsw.search(&[0.1, 0.0], &[1.0], 2, None);
        assert_eq!(hits.first().unwrap().0, 1);
        // k = 0 short-circuits
        assert!(hnsw.search(&[0.1, 0.0], &[1.0], 0, None).is_empty());
    }
}
