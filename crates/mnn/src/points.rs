//! Storage for mixed-curvature points with precomputed attention weights.
//!
//! Points are kept in two synchronised layouts. The AoS buffer (`n ×
//! total_dim`) backs the slice accessors ([`MixedPointSet::point`]) that
//! construction, serialisation and the tangent-space quantisers consume.
//! The scan paths — the exact scan, IVF probes, the HNSW beam and the
//! quantised-postings rerank — instead go through a structure-of-arrays
//! mirror ([`ComponentBlocks`]): per-curvature-component fixed-stride
//! coordinate blocks with precomputed squared norms, so every distance is
//! an allocation-free Gram-form evaluation over unit-stride dot products
//! ([`amcad_manifold::distance_gram`]) — the stand-in for the SIMD
//! instruction-level parallelism of the paper's MNN workers.

use std::collections::HashMap;

use amcad_manifold::ProductManifold;

use crate::quant::soa::ComponentBlocks;

/// A set of points of one mixed-curvature (edge) space, with per-point
/// attention weights.
///
/// Alongside the flat buffers the set maintains an id → index map, so
/// [`MixedPointSet::index_of`] is O(1) — serving-path lookups and the
/// delta-update validation both depend on that. The map records the
/// *first* occurrence of an id (duplicate ids are a build-input error
/// upstream, but the map never silently re-points an existing id).
#[derive(Debug, Clone)]
pub struct MixedPointSet {
    manifold: ProductManifold,
    ids: Vec<u32>,
    points: Vec<f64>,
    weights: Vec<f64>,
    by_id: HashMap<u32, usize>,
    blocks: ComponentBlocks,
}

impl MixedPointSet {
    /// Create an empty set over the given manifold.
    pub fn new(manifold: ProductManifold) -> Self {
        let blocks = ComponentBlocks::new(&manifold);
        MixedPointSet {
            manifold,
            ids: Vec::new(),
            points: Vec::new(),
            weights: Vec::new(),
            by_id: HashMap::new(),
            blocks,
        }
    }

    /// The manifold of this point set.
    pub fn manifold(&self) -> &ProductManifold {
        &self.manifold
    }

    /// The SoA scan mirror: per-component coordinate blocks, precomputed
    /// squared norms and weight lanes. The backends' chunked and gathered
    /// distance sweeps run over these.
    #[inline]
    pub fn blocks(&self) -> &ComponentBlocks {
        &self.blocks
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Add a point.  `point` must have the manifold's total dimension and
    /// `weight` one entry per subspace.
    pub fn push(&mut self, id: u32, point: &[f64], weight: &[f64]) {
        assert_eq!(
            point.len(),
            self.manifold.total_dim(),
            "point dimension mismatch"
        );
        assert_eq!(
            weight.len(),
            self.manifold.num_subspaces(),
            "weight length mismatch"
        );
        self.by_id.entry(id).or_insert(self.ids.len());
        self.ids.push(id);
        self.points.extend_from_slice(point);
        self.weights.extend_from_slice(weight);
        self.blocks.push(point, weight);
    }

    /// External id of the `i`-th point.
    #[inline]
    pub fn id(&self, i: usize) -> u32 {
        self.ids[i]
    }

    /// All ids in insertion order.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Coordinates of the `i`-th point.
    #[inline]
    pub fn point(&self, i: usize) -> &[f64] {
        let d = self.manifold.total_dim();
        &self.points[i * d..(i + 1) * d]
    }

    /// Attention weights of the `i`-th point.
    #[inline]
    pub fn weight(&self, i: usize) -> &[f64] {
        let m = self.manifold.num_subspaces();
        &self.weights[i * m..(i + 1) * m]
    }

    /// Index of the point with external id `id`, if present — an O(1) map
    /// lookup. With duplicate ids (a build-input error upstream) the
    /// *first* occurrence wins, matching what a linear scan would find.
    pub fn index_of(&self, id: u32) -> Option<usize> {
        self.by_id.get(&id).copied()
    }

    /// Whether a point with external id `id` is present.
    pub fn contains_id(&self, id: u32) -> bool {
        self.by_id.contains_key(&id)
    }

    /// The first id that occurs more than once, if any. O(1) when the set
    /// is duplicate-free (the id map then covers every point); only a set
    /// that actually contains duplicates pays for the scan. Index builds
    /// use this to reject corrupt inputs with a typed error.
    pub fn first_duplicate_id(&self) -> Option<u32> {
        if self.by_id.len() == self.ids.len() {
            return None;
        }
        let mut seen = std::collections::HashSet::with_capacity(self.ids.len());
        self.ids.iter().find(|&&id| !seen.insert(id)).copied()
    }

    /// Append every point of `other` (same manifold), preserving order,
    /// coordinates and weights bit-for-bit — the "add" half of the delta
    /// lifecycle.
    ///
    /// # Panics
    ///
    /// Panics if the manifolds differ.
    pub fn append(&mut self, other: &MixedPointSet) {
        assert_eq!(
            self.manifold, other.manifold,
            "appended points must live on the same manifold"
        );
        self.ids.reserve(other.len());
        self.points.reserve(other.points.len());
        self.weights.reserve(other.weights.len());
        for i in 0..other.len() {
            self.push(other.id(i), other.point(i), other.weight(i));
        }
    }

    /// Remove every point whose id satisfies `drop`, compacting the flat
    /// buffers in place while preserving the order of the survivors — the
    /// "retire" half of the delta lifecycle. Returns how many points were
    /// removed. The id map is rebuilt, so `index_of` stays consistent.
    pub fn retire(&mut self, mut drop: impl FnMut(u32) -> bool) -> usize {
        let d = self.manifold.total_dim();
        let m = self.manifold.num_subspaces();
        let n = self.len();
        let mut write = 0;
        for read in 0..n {
            if drop(self.ids[read]) {
                continue;
            }
            if write != read {
                self.ids[write] = self.ids[read];
                self.points.copy_within(read * d..(read + 1) * d, write * d);
                self.weights
                    .copy_within(read * m..(read + 1) * m, write * m);
            }
            write += 1;
        }
        self.ids.truncate(write);
        self.points.truncate(write * d);
        self.weights.truncate(write * m);
        self.by_id.clear();
        for (i, &id) in self.ids.iter().enumerate() {
            self.by_id.entry(id).or_insert(i);
        }
        // rebuild the SoA mirror from the compacted AoS buffers: the norms
        // are recomputed from bit-identical coordinates, so they land on
        // the same bits the survivors already had
        self.blocks.clear();
        for i in 0..write {
            let point = &self.points[i * d..(i + 1) * d];
            let weight = &self.weights[i * m..(i + 1) * m];
            self.blocks.push(point, weight);
        }
        n - write
    }

    /// Split the set into `parts` disjoint sets by assigning every point
    /// through `assign` (id → part index). Points keep their coordinates
    /// and weights bit-for-bit, so an index built over one part agrees
    /// exactly with the corresponding entries of an index built over the
    /// whole set — the property sharded index builds rely on.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0` or `assign` returns an out-of-range part.
    pub fn partition_by(
        &self,
        parts: usize,
        mut assign: impl FnMut(u32) -> usize,
    ) -> Vec<MixedPointSet> {
        assert!(parts > 0, "cannot partition into zero parts");
        let mut out: Vec<MixedPointSet> = (0..parts)
            .map(|_| MixedPointSet::new(self.manifold.clone()))
            .collect();
        for i in 0..self.len() {
            let id = self.id(i);
            let part = assign(id);
            assert!(
                part < parts,
                "assign({id}) returned part {part}, but there are only {parts} parts"
            );
            out[part].push(id, self.point(i), self.weight(i));
        }
        out
    }

    /// The subset of points whose id satisfies `keep`, preserving order,
    /// coordinates and weights.
    pub fn filtered(&self, mut keep: impl FnMut(u32) -> bool) -> MixedPointSet {
        let mut out = MixedPointSet::new(self.manifold.clone());
        for i in 0..self.len() {
            if keep(self.id(i)) {
                out.push(self.id(i), self.point(i), self.weight(i));
            }
        }
        out
    }

    /// Attention-weighted mixed-curvature distance between point `i` of this
    /// set and point `j` of `other` (both sets must share the manifold) —
    /// an allocation-free Gram-form evaluation over the SoA blocks with
    /// both squared norms precomputed.
    #[inline]
    pub fn distance_between(&self, i: usize, other: &MixedPointSet, j: usize) -> f64 {
        debug_assert_eq!(self.manifold.total_dim(), other.manifold.total_dim());
        self.blocks.distance_between(i, &other.blocks, j)
    }

    /// Distance of an external query point (with weights) to point `j` —
    /// one scattered allocation-free evaluation over the SoA blocks (the
    /// shape the HNSW beam uses; bulk scans go through
    /// [`MixedPointSet::blocks`]' chunked kernels).
    #[inline]
    pub fn distance_to(&self, query: &[f64], query_weight: &[f64], j: usize) -> f64 {
        self.blocks.distance_to(query, query_weight, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amcad_manifold::SubspaceSpec;

    fn sample_set() -> MixedPointSet {
        let manifold =
            ProductManifold::new(vec![SubspaceSpec::new(2, -1.0), SubspaceSpec::new(2, 1.0)]);
        let mut set = MixedPointSet::new(manifold.clone());
        set.push(10, &manifold.exp0(&[0.1, 0.0, 0.1, 0.0]), &[0.5, 0.5]);
        set.push(20, &manifold.exp0(&[0.0, 0.2, 0.0, 0.2]), &[0.7, 0.3]);
        set.push(30, &manifold.exp0(&[0.3, 0.3, -0.2, 0.1]), &[0.2, 0.8]);
        set
    }

    #[test]
    fn push_and_accessors() {
        let set = sample_set();
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert_eq!(set.id(1), 20);
        assert_eq!(set.ids(), &[10, 20, 30]);
        assert_eq!(set.point(0).len(), 4);
        assert_eq!(set.weight(2), &[0.2, 0.8]);
        assert_eq!(set.index_of(30), Some(2));
        assert_eq!(set.index_of(99), None);
    }

    #[test]
    #[should_panic]
    fn wrong_dimension_panics() {
        let mut set = sample_set();
        set.push(40, &[0.0, 0.0], &[0.5, 0.5]);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_identical_points() {
        let set = sample_set();
        let d01 = set.distance_between(0, &set, 1);
        let d10 = set.distance_between(1, &set, 0);
        assert!((d01 - d10).abs() < 1e-12);
        assert!(set.distance_between(0, &set, 0).abs() < 1e-12);
        assert!(d01 > 0.0);
    }

    #[test]
    fn partition_by_splits_points_without_altering_them() {
        let set = sample_set();
        let parts = set.partition_by(2, |id| (id as usize / 10) % 2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].ids(), &[20u32]); // 20/10 = 2 → part 0
        assert_eq!(parts[1].ids(), &[10, 30]);
        // coordinates and weights are preserved bit-for-bit
        let j = set.index_of(30).unwrap();
        let k = parts[1].index_of(30).unwrap();
        assert_eq!(set.point(j), parts[1].point(k));
        assert_eq!(set.weight(j), parts[1].weight(k));
        // a single part is a verbatim copy
        let whole = set.partition_by(1, |_| 0);
        assert_eq!(whole[0].ids(), set.ids());
    }

    #[test]
    #[should_panic]
    fn partition_by_rejects_out_of_range_parts() {
        sample_set().partition_by(2, |_| 5);
    }

    #[test]
    fn filtered_keeps_matching_ids_in_order() {
        let set = sample_set();
        let odd_tens = set.filtered(|id| id != 20);
        assert_eq!(odd_tens.ids(), &[10, 30]);
        assert!(set.filtered(|_| false).is_empty());
    }

    /// The id map must agree with a linear scan after every operation
    /// that builds or reshapes a set.
    fn assert_map_consistent(set: &MixedPointSet) {
        for i in 0..set.len() {
            let id = set.id(i);
            assert_eq!(
                set.index_of(id),
                set.ids().iter().position(|&x| x == id),
                "index_of({id}) diverged from the linear scan"
            );
            assert!(set.contains_id(id));
        }
        assert_eq!(set.index_of(u32::MAX), None);
        assert!(!set.contains_id(u32::MAX));
    }

    #[test]
    fn partition_by_and_filtered_keep_the_id_map_consistent() {
        let set = sample_set();
        assert_map_consistent(&set);
        for part in set.partition_by(2, |id| (id as usize / 10) % 2) {
            assert_map_consistent(&part);
        }
        let filtered = set.filtered(|id| id != 20);
        assert_map_consistent(&filtered);
        assert_eq!(filtered.index_of(20), None);
        assert_eq!(filtered.index_of(30), Some(1), "indices shift after a drop");
    }

    #[test]
    fn append_adds_points_bit_for_bit_and_updates_the_map() {
        let mut set = sample_set();
        let manifold = set.manifold().clone();
        let mut extra = MixedPointSet::new(manifold.clone());
        extra.push(40, &manifold.exp0(&[0.2, -0.1, 0.0, 0.3]), &[0.6, 0.4]);
        extra.push(50, &manifold.exp0(&[-0.1, 0.1, 0.2, 0.0]), &[0.1, 0.9]);
        set.append(&extra);
        assert_eq!(set.ids(), &[10, 20, 30, 40, 50]);
        assert_eq!(set.point(3), extra.point(0));
        assert_eq!(set.weight(4), extra.weight(1));
        assert_map_consistent(&set);
    }

    #[test]
    #[should_panic]
    fn append_rejects_a_foreign_manifold() {
        let mut set = sample_set();
        let other = MixedPointSet::new(ProductManifold::new(vec![SubspaceSpec::new(3, 0.0)]));
        set.append(&other);
    }

    #[test]
    fn retire_compacts_in_place_preserving_survivor_order() {
        let mut set = sample_set();
        let expected_point = set.point(2).to_vec();
        let expected_weight = set.weight(2).to_vec();
        assert_eq!(set.retire(|id| id == 20), 1);
        assert_eq!(set.ids(), &[10, 30]);
        assert_eq!(set.point(1), expected_point.as_slice());
        assert_eq!(set.weight(1), expected_weight.as_slice());
        assert_map_consistent(&set);
        // retiring nothing is a no-op; retiring everything empties the set
        assert_eq!(set.retire(|_| false), 0);
        assert_eq!(set.len(), 2);
        assert_eq!(set.retire(|_| true), 2);
        assert!(set.is_empty());
        assert_map_consistent(&set);
    }

    #[test]
    fn retire_then_append_round_trips_a_point() {
        let mut set = sample_set();
        let held_out = set.filtered(|id| id == 20);
        set.retire(|id| id == 20);
        set.append(&held_out);
        assert_eq!(set.ids(), &[10, 30, 20]);
        let original = sample_set();
        let (i, j) = (original.index_of(20).unwrap(), set.index_of(20).unwrap());
        assert_eq!(original.point(i), set.point(j));
        assert_eq!(original.weight(i), set.weight(j));
        assert_map_consistent(&set);
    }

    #[test]
    fn duplicate_ids_are_detected_and_first_occurrence_wins() {
        let mut set = sample_set();
        assert_eq!(set.first_duplicate_id(), None);
        let manifold = set.manifold().clone();
        set.push(20, &manifold.exp0(&[0.0; 4]), &[0.5, 0.5]);
        assert_eq!(set.first_duplicate_id(), Some(20));
        assert_eq!(set.index_of(20), Some(1), "first occurrence wins");
    }

    #[test]
    fn distance_to_external_query_matches_member_distance() {
        let set = sample_set();
        let q = set.point(1).to_vec();
        let w = set.weight(1).to_vec();
        let d = set.distance_to(&q, &w, 0);
        assert!((d - set.distance_between(1, &set, 0)).abs() < 1e-12);
    }

    /// The Gram-form SoA kernel and the reference manifold path compute
    /// the same weighted distances (up to ulp-level rounding — they take
    /// different but algebraically equal routes to `‖-x ⊕_κ y‖`).
    #[test]
    fn gram_form_distances_match_the_manifold_reference() {
        let set = sample_set();
        for i in 0..set.len() {
            for j in 0..set.len() {
                let w: Vec<f64> = set
                    .weight(i)
                    .iter()
                    .zip(set.weight(j))
                    .map(|(a, b)| a + b)
                    .collect();
                let reference = set
                    .manifold()
                    .weighted_distance(set.point(i), set.point(j), &w);
                let fast = set.distance_between(i, &set, j);
                assert!(
                    (fast - reference).abs() < 1e-10,
                    "({i},{j}): {fast} vs {reference}"
                );
            }
        }
    }

    /// The SoA mirror must track the AoS buffers bit-for-bit through every
    /// reshaping operation (push, append, retire, partition, filter).
    fn assert_blocks_consistent(set: &MixedPointSet) {
        let blocks = set.blocks();
        assert_eq!(blocks.len(), set.len());
        for i in 0..set.len() {
            for m in 0..set.manifold().num_subspaces() {
                let range = set.manifold().range(m);
                assert_eq!(blocks.coords_of(m, i), &set.point(i)[range]);
                assert_eq!(blocks.stored_weight(m, i), set.weight(i)[m]);
            }
        }
    }

    #[test]
    fn soa_blocks_mirror_the_aos_buffers_through_every_reshape() {
        let mut set = sample_set();
        assert_blocks_consistent(&set);
        let manifold = set.manifold().clone();
        let mut extra = MixedPointSet::new(manifold.clone());
        extra.push(40, &manifold.exp0(&[0.2, -0.1, 0.0, 0.3]), &[0.6, 0.4]);
        set.append(&extra);
        assert_blocks_consistent(&set);
        set.retire(|id| id == 20);
        assert_blocks_consistent(&set);
        for part in set.partition_by(2, |id| (id as usize / 10) % 2) {
            assert_blocks_consistent(&part);
        }
        assert_blocks_consistent(&set.filtered(|id| id != 10));
        set.retire(|_| true);
        assert_blocks_consistent(&set);
    }
}
