//! Online serving scenario: build the six inverted indices with both ANN
//! backends and several shard counts, serve traffic through the `Retrieve`
//! API and measure latency under load.
//!
//! This exercises the production-facing half of the system (Section IV-C of
//! the paper): MNN index construction behind the pluggable `AnnIndex`
//! backend seam, the Q2Q/Q2I/I2Q/I2I first layer, the Q2A/I2A second
//! layer, ad-hash sharding with an exact merge (shards built concurrently
//! on the scoped worker pool, fanned out in parallel at serving time),
//! per-shard replication with round-robin failover, batched serving
//! workers, and an open-loop load test like Fig. 9 — every topology
//! served through the same `&dyn Retrieve` the transport layer would
//! hold.
//!
//! ```bash
//! cargo run --release --example online_serving
//! ```

use std::sync::Arc;
use std::time::Duration;

use amcad::core::{build_index_inputs, Pipeline, PipelineConfig};
use amcad::eval::TextTable;
use amcad::mnn::{HnswConfig, IndexBackend, IvfConfig};
use amcad::retrieval::{
    CoverageSource, Request, RetrievalEngine, Retrieve, RuntimeConfig, Scenario, ServingConfig,
    ServingRuntime, ServingSimulator, ShardedEngine,
};

fn main() {
    let result = Pipeline::new(PipelineConfig::small(11)).run();

    let indexes = result.engine.indexes();
    println!(
        "inverted indices built ({} backend): {} posting lists, {} postings total",
        result.engine.backend().label(),
        indexes.total_keys(),
        indexes.total_postings()
    );
    println!(
        "  Q2Q {}  Q2I {}  I2Q {}  I2I {}  Q2A {}  I2A {} keys\n",
        indexes.q2q.len(),
        indexes.q2i.len(),
        indexes.i2q.len(),
        indexes.i2i.len(),
        indexes.q2a.len(),
        indexes.i2a.len()
    );

    // Coverage benefit of the second layer: how many requests get ads from
    // the single-layer (query-only) channel vs the two-layer channel, and
    // which channel provided the coverage.
    let requests: Vec<Request> = result
        .dataset
        .eval_sessions
        .iter()
        .map(|s| Request {
            query: s.query.0,
            preclick_items: result
                .dataset
                .preclick_items(s)
                .iter()
                .map(|n| n.0)
                .collect(),
        })
        .collect();
    let mut single_covered = 0usize;
    let mut two_covered = 0usize;
    let mut via_preclick = 0usize;
    for r in &requests {
        if !result.engine.retrieve_single_layer(r.query).is_empty() {
            single_covered += 1;
        }
        if let Ok(response) = result.engine.retrieve(r) {
            two_covered += 1;
            if response.stats.coverage == CoverageSource::PreclickItems {
                via_preclick += 1;
            }
        }
    }
    println!(
        "coverage over {} next-day requests: single layer {:.1}%, two layers {:.1}% ({} recovered only through pre-clicks)\n",
        requests.len(),
        100.0 * single_covered as f64 / requests.len() as f64,
        100.0 * two_covered as f64 / requests.len() as f64,
        via_preclick
    );

    // Load test: latency vs offered QPS per serving topology — exact and
    // IVF single-node engines plus 2- and 4-shard deployments, all served
    // through the same `&dyn Retrieve` a transport layer would hold. The
    // pipeline already built the single exact engine; everything else
    // comes from the same embeddings through the builders.
    let inputs = build_index_inputs(&result.export, &result.dataset);
    let ivf_engine = RetrievalEngine::builder()
        .index(*result.engine.index_config())
        .backend(IndexBackend::Ivf(IvfConfig::default()))
        .build(&inputs)
        .expect("pipeline inputs build a valid engine");
    let hnsw_engine = RetrievalEngine::builder()
        .index(*result.engine.index_config())
        .backend(IndexBackend::Hnsw(HnswConfig::default()))
        .build(&inputs)
        .expect("pipeline inputs build a valid engine");
    let sharded: Vec<ShardedEngine> = [2usize, 4]
        .into_iter()
        .map(|shards| {
            ShardedEngine::builder()
                .shards(shards)
                .build_threads(shards) // independent per-shard builds run concurrently
                .index(*result.engine.index_config())
                .build(&inputs)
                .expect("pipeline inputs build a valid sharded engine")
        })
        .collect();
    // the replicated deployment: 2 serving replicas per shard, requests
    // fanned out on a 2-thread pool — availability and fan-out knobs only,
    // rankings stay bit-identical to the single exact engine
    let replicated = ShardedEngine::builder()
        .shards(2)
        .replicas(2)
        .fanout_threads(2)
        .index(*result.engine.index_config())
        .build(&inputs)
        .expect("pipeline inputs build a valid replicated engine");
    let topologies: Vec<(String, &dyn Retrieve)> = vec![
        (
            format!("{} x1", result.engine.backend().label()),
            &result.engine,
        ),
        (format!("{} x1", ivf_engine.backend().label()), &ivf_engine),
        (
            format!("{} x1", hnsw_engine.backend().label()),
            &hnsw_engine,
        ),
        (
            format!("exact x{} shards", sharded[0].num_shards()),
            &sharded[0],
        ),
        (
            format!("exact x{} shards", sharded[1].num_shards()),
            &sharded[1],
        ),
        (
            format!(
                "exact x{} shards x{} replicas",
                replicated.num_shards(),
                replicated.replicas()
            ),
            &replicated,
        ),
    ];
    let serving = ServingConfig {
        workers: 4,
        requests_per_level: 1_500,
        batch_size: 8,
    };
    for (label, engine) in topologies {
        let sim = ServingSimulator::new(engine, serving);
        let reports = sim.sweep(&requests, &[1_000.0, 5_000.0, 20_000.0, 80_000.0]);
        let mut table = TextTable::new(vec![
            "Offered QPS",
            "Mean (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "Achieved QPS",
        ]);
        for r in &reports {
            table.row(vec![
                format!("{:.0}", r.offered_qps),
                format!("{:.3}", r.mean_ms),
                format!("{:.3}", r.p95_ms),
                format!("{:.3}", r.p99_ms),
                format!("{:.0}", r.achieved_qps),
            ]);
        }
        println!("topology: {label}\n{}", table.render());
    }
    println!("Sharded topologies return bit-identical rankings to the single exact engine;");
    println!("the per-request fan-out trades a little latency for an N-way split of the");
    println!("ad-side index build and memory (see table9_scalability for the build times).\n");

    // Backend selection demo: the same embeddings behind the exact scan
    // and HNSW graphs at two beam widths — recall of the ad-side posting
    // lists against exact next to the serving latency each index yields.
    let top_k = result.engine.index_config().top_k;
    println!("== Backend selection: exact vs HNSW (recall vs latency) ==\n");
    let mut backend_table = TextTable::new(vec![
        "Backend",
        "Knob",
        "Recall@top_k",
        "Mean (ms)",
        "p95 (ms)",
    ]);
    let narrow_hnsw = RetrievalEngine::builder()
        .index(*result.engine.index_config())
        .backend(IndexBackend::Hnsw(HnswConfig::default().with_ef_search(4)))
        .build(&inputs)
        .expect("pipeline inputs build a valid engine");
    let comparisons: [(&str, &str, &RetrievalEngine); 3] = [
        ("exact", "-", &result.engine),
        ("hnsw", "ef=4", &narrow_hnsw),
        ("hnsw", "ef=48", &hnsw_engine),
    ];
    for (label, knob, engine) in comparisons {
        let recall = engine
            .indexes()
            .ad_recall_against(result.engine.indexes(), top_k);
        let report = ServingSimulator::new(engine, serving).run_level(&requests, 20_000.0);
        backend_table.row(vec![
            label.to_string(),
            knob.to_string(),
            format!("{recall:.3}"),
            format!("{:.3}", report.mean_ms),
            format!("{:.3}", report.p95_ms),
        ]);
    }
    println!("{}", backend_table.render());
    println!("HNSW builds its posting lists by walking a small-world graph instead of");
    println!("scanning every ad per key: ef_search widens the walk — higher recall of the");
    println!("exact neighbours, more build work — while serving reads the same-shaped");
    println!("posting lists either way. It is also the backend whose `insert` genuinely");
    println!("extends a resident index (insertion *is* construction).\n");

    // Failover: kill one replica of shard 0 — traffic reroutes to its
    // sibling with the ranking untouched; kill the sibling too and the
    // shard degrades to a *typed* error instead of serving a corpus with
    // a hole in it.
    let probe = requests
        .iter()
        .find(|r| replicated.retrieve(r).is_ok())
        .cloned()
        .expect("eval sessions cover at least one request");
    let healthy = replicated.retrieve(&probe).unwrap();
    replicated.fail_replica(0, 0);
    let failed_over = replicated.retrieve(&probe).unwrap();
    assert_eq!(healthy.ads, failed_over.ads);
    println!(
        "failover demo: killed replica 0 of shard 0; route {:?} -> {:?}, ads unchanged",
        healthy.stats.served_by, failed_over.stats.served_by
    );
    replicated.fail_replica(0, 1);
    match replicated.retrieve(&probe) {
        Err(e) => println!("both replicas of shard 0 down -> typed degradation: {e}"),
        Ok(_) => unreachable!("a shard with zero replicas cannot serve"),
    }
    replicated.restore_replica(0, 0);
    println!(
        "one replica restored -> serving again: {}",
        replicated.retrieve(&probe).is_ok()
    );

    // Persistent serving runtime: a bounded admission queue with per-request
    // deadlines in front of a hedged 2x2 deployment. A flash crowd far past
    // what one worker can drain sheds at the queue with a typed
    // `Overloaded` error instead of letting latency grow without bound,
    // and the recovery phase goes back to serving everything.
    println!("\n== Serving runtime: flash-crowd shedding, then hedged recovery ==\n");
    let hedged = Arc::new(
        ShardedEngine::builder()
            .shards(2)
            .replicas(2)
            .fanout_threads(2)
            .hedge_delay(Duration::from_millis(1))
            .index(*result.engine.index_config())
            .build(&inputs)
            .expect("pipeline inputs build a valid hedged engine"),
    );
    let hedge = Arc::clone(hedged.hedge_control().expect("replicas > 1 enable hedging"));
    let runtime = ServingRuntime::new(
        Arc::clone(&hedged) as Arc<dyn Retrieve>,
        RuntimeConfig {
            workers: 1,
            queue_depth: 16,
            deadline: Duration::from_secs(1),
            batch_size: 4,
        },
    )
    .expect("a positive worker count and queue depth are valid")
    .with_hedge_metrics(Arc::clone(&hedge));
    // base phases arrive 10 ms apart — generous headroom over the tiny
    // corpus' sub-millisecond service time, so only the spike can shed
    let scenario = Scenario::flash_crowd(100.0, 5_000_000.0, 60, 2_000);
    let reports = runtime.run_scenario(&requests, &scenario);
    let mut crowd_table = TextTable::new(vec![
        "Phase",
        "Offered QPS",
        "Completed",
        "Shed",
        "Goodput QPS",
        "p99 (ms)",
    ]);
    for (phase, r) in scenario.phases.iter().zip(&reports) {
        crowd_table.row(vec![
            phase.label.to_string(),
            format!("{:.0}", r.offered_qps),
            format!("{}", r.completed),
            format!("{}", r.shed),
            format!("{:.0}", r.goodput_qps),
            format!("{:.3}", r.p99_ms),
        ]);
    }
    println!("{}", crowd_table.render());
    assert_eq!(reports[0].shed, 0, "base load fits in the queue");
    assert!(reports[1].shed > 0, "the spike must shed at the queue");
    assert_eq!(
        reports[1].completed + reports[1].shed,
        2_000,
        "every spike request is accounted for"
    );
    assert_eq!(reports[2].shed, 0, "dropping the load restores zero-shed");
    println!(
        "the spike shed {} requests at the admission queue; the recovery",
        reports[1].shed
    );
    println!("phase served everything again — overload degrades by typed refusal,");
    println!("not by unbounded queueing.\n");

    // Hedged recovery: degrade one replica of shard 0 so its gathers
    // straggle well past the hedge delay. The runtime keeps serving through
    // the same queue while every request to that shard is re-issued to the
    // healthy sibling, which wins the race — rankings unchanged.
    let reference: Vec<_> = requests
        .iter()
        .take(8)
        .map(|r| hedged.retrieve(r).map(|resp| resp.ads))
        .collect();
    let (issued_before, wins_before) = (hedge.issued(), hedge.wins());
    hedged.delay_replica(0, 0, Duration::from_millis(10));
    for (r, healthy_ads) in requests.iter().take(8).zip(&reference) {
        let degraded = runtime.retrieve_blocking(r).map(|resp| resp.ads);
        assert_eq!(
            &degraded, healthy_ads,
            "hedging changes routes, never rankings"
        );
    }
    let issued = hedge.issued() - issued_before;
    let wins = hedge.wins() - wins_before;
    assert!(issued > 0, "a 10ms straggler must trigger 1ms hedges");
    assert!(wins > 0, "the healthy sibling wins at least one race");
    println!("degraded replica 0 of shard 0 by 10ms against a 1ms hedge delay:");
    println!(
        "{issued} hedge sub-requests issued, {wins} won by the sibling replica — all 8 \
         rankings identical to the healthy run."
    );
    hedged.delay_replica(0, 0, Duration::ZERO);
    let stats = runtime.stats();
    println!(
        "runtime counters: {} admitted, {} completed, {} shed at the queue, {} shed past deadline",
        stats.admitted, stats.completed, stats.shed_queue_full, stats.shed_deadline
    );
}
