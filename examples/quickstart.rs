//! Quickstart: run the complete AMCAD pipeline end to end on a small
//! synthetic sponsored-search world and serve a few requests.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use amcad::core::{Pipeline, PipelineConfig};
use amcad::graph::NodeId;
use amcad::retrieval::Request;

fn main() {
    // 1. One call runs: behaviour-log generation → heterogeneous graph →
    //    adaptive mixed-curvature training → embedding export → MNN index
    //    construction → two-layer retriever → offline evaluation.
    let config = PipelineConfig::small(42);
    println!(
        "generating a synthetic world with {} categories and training `{}` ...",
        config.world.num_categories, config.model.name
    );
    let result = Pipeline::new(config).run();

    // 2. Inspect the offline metrics (the paper's Table VI protocol).
    let stats = result.dataset.graph.stats();
    println!(
        "graph: {} queries / {} items / {} ads, {} edges",
        stats.queries,
        stats.items,
        stats.ads,
        stats.total_edges()
    );
    println!(
        "training: {} steps, final loss {:.4}",
        result.train_report.losses.len(),
        result
            .train_report
            .losses
            .last()
            .copied()
            .unwrap_or(f64::NAN)
    );
    println!("offline metrics:");
    println!("  Next AUC        = {:.2}", result.offline.next_auc);
    println!("  Q2I HitRate@10  = {:.2}%", result.offline.q2i.hitrate[0]);
    println!("  Q2A HitRate@10  = {:.2}%", result.offline.q2a.hitrate[0]);

    // 3. What did the adaptive curvatures converge to?
    for (m, _) in result.model.config().subspaces.iter().enumerate() {
        let kappa = result.model.node_kappa(m, amcad::graph::NodeType::Query);
        println!("  query subspace {m}: learned curvature kappa = {kappa:+.4}");
    }

    // 4. Serve a few next-day requests through the retrieval engine (the
    //    pipeline builds it with the exact backend by default; see the
    //    online_serving example for backend selection).
    println!("\nserving three next-day sessions:");
    for session in result.dataset.eval_sessions.iter().take(3) {
        let request = Request {
            query: session.query.0,
            preclick_items: result
                .dataset
                .preclick_items(session)
                .iter()
                .map(|n| n.0)
                .collect(),
        };
        match result.engine.retrieve(&request) {
            Ok(response) => {
                let best_relevance = response
                    .ads
                    .first()
                    .map(|a| result.dataset.relevance(session.query, NodeId(a.ad)))
                    .unwrap_or(0.0);
                println!(
                    "  query {:>4} (+{} pre-click items) -> {} ads via {:?}, top-1 ground-truth relevance {:.2}",
                    request.query,
                    request.preclick_items.len(),
                    response.ads.len(),
                    response.stats.coverage,
                    best_relevance
                );
            }
            Err(err) => println!("  query {:>4}: {err}", request.query),
        }
    }
}
