//! Compare embedding geometries on the same interaction graph.
//!
//! This is the scenario the paper's introduction motivates: the
//! query–item–ad graph mixes a query hierarchy with cyclic co-click/co-bid
//! product clusters, so a single flat (or single curved) space distorts one
//! of the structures.  The example trains the Euclidean, hyperbolic,
//! spherical and adaptive mixed-curvature variants of the same architecture
//! and prints their offline metrics side by side.
//!
//! ```bash
//! cargo run --release --example geometry_comparison
//! ```

use amcad::core::{build_index_inputs, evaluate_offline, EvalConfig};
use amcad::datagen::{Dataset, WorldConfig};
use amcad::eval::TextTable;
use amcad::model::{AmcadConfig, AmcadModel, Trainer, TrainerConfig};
use amcad::retrieval::{Request, RetrievalEngine};

fn main() {
    let seed = 7;
    let dataset = Dataset::generate(&WorldConfig::tiny(seed));
    let trainer_cfg = TrainerConfig {
        batch_size: 16,
        steps: 80,
        seed,
        lru_max_age: 0,
    };
    let eval_cfg = EvalConfig {
        max_queries: 40,
        auc_negatives: 4,
        seed,
    };

    let configs = vec![
        AmcadConfig::euclidean(4, seed),
        AmcadConfig::hyperbolic(4, seed),
        AmcadConfig::spherical(4, seed),
        AmcadConfig::unified_single(4, seed),
        AmcadConfig::amcad(4, seed),
    ];

    let mut table = TextTable::new(vec![
        "Geometry",
        "Next AUC",
        "Q2I HR@10",
        "Q2A HR@10",
        "Serving coverage",
        "learned kappas (query)",
    ]);
    for cfg in configs {
        let name = cfg.name.clone();
        let m_count = cfg.num_subspaces();
        let mut model = AmcadModel::new(cfg, &dataset.graph);
        Trainer::new(trainer_cfg).run(&mut model, &dataset.graph);
        let export = model.export(&dataset.graph, seed);
        let metrics = evaluate_offline(&export, &dataset, &eval_cfg);
        // end-to-end view: how much next-day traffic the geometry's
        // serving engine covers through the two-layer retrieval
        let engine = RetrievalEngine::builder()
            .top_k(10)
            .threads(2)
            .build(&build_index_inputs(&export, &dataset))
            .expect("every geometry exports non-empty ad indices");
        let covered = dataset
            .eval_sessions
            .iter()
            .filter(|s| {
                let request = Request {
                    query: s.query.0,
                    preclick_items: dataset.preclick_items(s).iter().map(|n| n.0).collect(),
                };
                engine.retrieve(&request).is_ok()
            })
            .count();
        let kappas: Vec<String> = (0..m_count)
            .map(|m| format!("{:+.3}", model.node_kappa(m, amcad::graph::NodeType::Query)))
            .collect();
        table.row(vec![
            name,
            format!("{:.2}", metrics.next_auc),
            format!("{:.2}", metrics.q2i.hitrate[0]),
            format!("{:.2}", metrics.q2a.hitrate[0]),
            format!(
                "{:.1}%",
                100.0 * covered as f64 / dataset.eval_sessions.len() as f64
            ),
            kappas.join(", "),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape (paper, Table VI): Euclidean < single curved space < adaptive mixed-curvature.");
}
