//! Incremental (day-over-day) training, as deployed in production
//! (Section V-C of the paper): each day the model warm-starts from the
//! previous day's parameters and is trained only on the new day's logs,
//! keeping metrics stable while saving the cost of full retraining.
//!
//! ```bash
//! cargo run --release --example incremental_training
//! ```

use amcad::core::{build_index_inputs, evaluate_offline, EvalConfig};
use amcad::datagen::{Dataset, WorldConfig};
use amcad::eval::TextTable;
use amcad::model::{AmcadConfig, AmcadModel, Trainer, TrainerConfig};
use amcad::retrieval::{Request, RetrievalEngine};

fn main() {
    let seed = 23;
    // Three consecutive "days" drawn from the same latent world (different
    // session seeds), so entities stay aligned while behaviour shifts.
    let days: Vec<Dataset> = (0..3)
        .map(|d| {
            let mut w = WorldConfig::tiny(seed);
            w.seed = seed + d as u64; // same sizes, different sessions
            Dataset::generate(&w)
        })
        .collect();

    let trainer = Trainer::new(TrainerConfig {
        batch_size: 16,
        steps: 60,
        seed,
        lru_max_age: 0,
    });
    let eval_cfg = EvalConfig {
        max_queries: 40,
        auc_negatives: 4,
        seed,
    };

    // The model is created once (against day 0's graph, which defines the
    // vocabulary sizes) and then trained incrementally on each day.
    let mut model = AmcadModel::new(AmcadConfig::test_tiny(seed), &days[0].graph);
    let mut table = TextTable::new(vec![
        "Day",
        "Train loss (last step)",
        "Next AUC (same day's next-day logs)",
    ]);
    for (d, dataset) in days.iter().enumerate() {
        let report = trainer.run(&mut model, &dataset.graph);
        let export = model.export(&dataset.graph, seed);
        let metrics = evaluate_offline(&export, dataset, &eval_cfg);
        table.row(vec![
            format!("day {}", d + 1),
            format!("{:.4}", report.losses.last().copied().unwrap_or(f64::NAN)),
            format!("{:.2}", metrics.next_auc),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: metrics stay in the same band from day to day — warm-started incremental"
    );
    println!("training does not degrade the model (Section V-C reports day-over-day stability).");

    // Production loop closing step: refresh the serving indices from the
    // latest day's embeddings and serve through the engine.
    let last_day = days.last().unwrap();
    let export = model.export(&last_day.graph, seed);
    let engine = RetrievalEngine::builder()
        .top_k(10)
        .threads(2)
        .build(&build_index_inputs(&export, last_day))
        .expect("incremental exports keep the ad indices non-empty");
    let session = &last_day.eval_sessions[0];
    let request = Request {
        query: session.query.0,
        preclick_items: last_day
            .preclick_items(session)
            .iter()
            .map(|n| n.0)
            .collect(),
    };
    match engine.retrieve(&request) {
        Ok(response) => println!(
            "\nday-3 engine serves query {}: {} ads (coverage {:?})",
            request.query,
            response.ads.len(),
            response.stats.coverage
        ),
        Err(err) => println!("\nday-3 engine: {err}"),
    }
}
