//! Incremental (day-over-day) training with zero-downtime index refresh,
//! as deployed in production (Section V-C of the paper): each day the
//! model warm-starts from the previous day's parameters and is trained
//! only on the new day's logs, keeping metrics stable while saving the
//! cost of full retraining — and each day's refreshed indices are
//! **published into live serving** through an `EngineHandle` snapshot
//! swap. Worker threads keep retrieving throughout; every response is
//! attributable to the snapshot generation (= serving day) that produced
//! it, and no request ever fails or observes a half-swapped index.
//!
//! Between the daily full refreshes the ad corpus itself churns: ads are
//! on-boarded and taken down while queries keep flowing. The second phase
//! models that with **delta publishes** — `EngineHandle::publish_delta`
//! appends / retires ads through a `ShardedDeltaBuilder` without
//! re-running the full neighbour build, and the example reports the
//! measured delta-publish versus full-rebuild wall clock.
//!
//! The third phase is the **warm restart**: mid-churn, the deployment is
//! saved to a durable snapshot (`EngineHandle::save_snapshot`), a
//! "restarted process" reloads it (`EngineHandle::load`) without
//! re-running any index build, catches up on the delta published after
//! the snapshot, and is verified to serve exactly what the
//! never-restarted deployment serves.
//!
//! ```bash
//! cargo run --release --example incremental_training
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use amcad::core::{build_index_inputs, evaluate_offline, EvalConfig};
use amcad::datagen::{Dataset, WorldConfig};
use amcad::eval::TextTable;
use amcad::model::{AmcadConfig, AmcadModel, Trainer, TrainerConfig};
use amcad::retrieval::{
    EngineHandle, IndexDelta, Request, RetrievalEngine, Retrieve, ShardedDeltaBuilder,
    ShardedEngine,
};

fn main() {
    let seed = 23;
    // Consecutive "days" drawn from the same latent world (different
    // session seeds), so entities stay aligned while behaviour shifts.
    let days: Vec<Dataset> = (0..3)
        .map(|d| {
            let mut w = WorldConfig::tiny(seed);
            w.seed = seed + d as u64; // same sizes, different sessions
            Dataset::generate(&w)
        })
        .collect();

    let trainer = Trainer::new(TrainerConfig {
        batch_size: 16,
        steps: 60,
        seed,
        lru_max_age: 0,
    });
    let eval_cfg = EvalConfig {
        max_queries: 40,
        auc_negatives: 4,
        seed,
    };
    // one export per day feeds both the offline metrics and the index build
    let build_engine = |inputs: &amcad::retrieval::IndexBuildInputs| -> RetrievalEngine {
        RetrievalEngine::builder()
            .top_k(10)
            .threads(2)
            .build(inputs)
            .expect("incremental exports keep the ad indices non-empty")
    };

    // Day 1: cold start, first index build, first published generation.
    let mut model = AmcadModel::new(AmcadConfig::test_tiny(seed), &days[0].graph);
    let mut table = TextTable::new(vec![
        "Day",
        "Train loss (last step)",
        "Next AUC (same day's next-day logs)",
        "Published generation",
    ]);
    let day1_report = trainer.run(&mut model, &days[0].graph);
    let day1_export = model.export(&days[0].graph, seed);
    let day1_metrics = evaluate_offline(&day1_export, &days[0], &eval_cfg);
    let handle = EngineHandle::new(build_engine(&build_index_inputs(&day1_export, &days[0])));
    table.row(vec![
        "day 1".into(),
        format!(
            "{:.4}",
            day1_report.losses.last().copied().unwrap_or(f64::NAN)
        ),
        format!("{:.2}", day1_metrics.next_auc),
        handle.generation().to_string(),
    ]);

    // Days 2..: serving stays up on the handle while training and index
    // rebuilds happen on the side; each rebuild is published with one
    // snapshot swap. The workers tally responses per generation — the
    // attribution record a production audit would keep.
    let request_templates: Vec<Request> = days[0]
        .eval_sessions
        .iter()
        .take(50)
        .map(|s| Request {
            query: s.query.0,
            preclick_items: days[0].preclick_items(s).iter().map(|n| n.0).collect(),
        })
        .collect();
    let stop = AtomicBool::new(false);
    let errors = std::sync::atomic::AtomicUsize::new(0);
    let served_per_generation: Mutex<BTreeMap<u64, usize>> = Mutex::new(BTreeMap::new());
    let mut last_inputs: Option<amcad::retrieval::IndexBuildInputs> = None;
    let mut churn_summary = String::new();
    let mut restart_summary = String::new();
    // amcad-lint: allow(thread-discipline) — demo probe workers: the example simulates external request traffic hitting the handle, which by construction runs off the serving pools
    std::thread::scope(|scope| {
        for worker in 0..2usize {
            let handle = &handle;
            let stop = &stop;
            let errors = &errors;
            let served = &served_per_generation;
            let requests = &request_templates;
            scope.spawn(move || {
                let mut i = worker; // stagger the two workers

                // advisory stop flag — seeing it a beat late only serves
                // one extra request, so Relaxed
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = handle.snapshot();
                    match snapshot.retrieve(&requests[i % requests.len()]) {
                        Ok(_) => {
                            *served.lock().entry(snapshot.generation()).or_insert(0) += 1;
                        }
                        Err(_) => {
                            // monotonic tally, read after the scope join — Relaxed
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    i += 1;
                }
            });
        }

        for (d, dataset) in days.iter().enumerate().skip(1) {
            let report = trainer.run(&mut model, &dataset.graph);
            let export = model.export(&dataset.graph, seed);
            let metrics = evaluate_offline(&export, dataset, &eval_cfg);
            let inputs = build_index_inputs(&export, dataset);
            let generation = handle.publish(build_engine(&inputs));
            last_inputs = Some(inputs);
            table.row(vec![
                format!("day {}", d + 1),
                format!("{:.4}", report.losses.last().copied().unwrap_or(f64::NAN)),
                format!("{:.2}", metrics.next_auc),
                generation.to_string(),
            ]);
            // let the workers serve a while on the fresh generation
            std::thread::sleep(Duration::from_millis(30));
        }

        // -- Intra-day corpus churn: delta publishes, serving never stops --
        // Between full daily refreshes the corpus itself churns. Model it:
        // a deployment serving the last day's corpus minus a hold-out, a
        // delta that on-boards the hold-out and retires a few live ads,
        // and the measured delta-publish vs full-rebuild wall clock.
        let inputs = last_inputs.take().expect("the day loop always runs");
        let ad_ids: Vec<u32> = inputs.ads_qa.ids().to_vec();
        let held_out: Vec<u32> = ad_ids.iter().rev().take(3).copied().collect();
        let retired: Vec<u32> = ad_ids.iter().take(3).copied().collect();
        let mut base = inputs.clone();
        base.ads_qa.retire(|id| held_out.contains(&id));
        base.ads_ia.retire(|id| held_out.contains(&id));
        let mut builder = ShardedDeltaBuilder::new(
            &base,
            ShardedEngine::builder().shards(2).top_k(10).threads(1),
        )
        .expect("the churned corpus seeds a valid delta builder");
        handle.publish(builder.engine().expect("the base generation serves"));
        let delta = IndexDelta {
            added_ads_qa: inputs.ads_qa.filtered(|id| held_out.contains(&id)),
            added_ads_ia: inputs.ads_ia.filtered(|id| held_out.contains(&id)),
            retired_ads: retired.clone(),
        };
        let start = Instant::now();
        let generation = handle
            .publish_delta(&mut builder, &delta)
            .expect("the churn delta is valid");
        let delta_secs = start.elapsed().as_secs_f64();
        // the same post-delta corpus, rebuilt from scratch (timed only —
        // the delta generation is already live)
        let mut post = base.clone();
        delta.apply_to(&mut post);
        let start = Instant::now();
        ShardedEngine::builder()
            .shards(2)
            .top_k(10)
            .threads(1)
            .build(&post)
            .expect("the post-delta corpus rebuilds");
        let full_secs = start.elapsed().as_secs_f64();
        churn_summary = format!(
            "generation {generation}: +{} on-boarded / -{} retired ads published as a delta in \
             {:.2} ms — a full rebuild of the same corpus takes {:.2} ms ({:.1}x)",
            held_out.len(),
            retired.len(),
            delta_secs * 1e3,
            full_secs * 1e3,
            full_secs / delta_secs.max(1e-9),
        );

        // -- Warm restart mid-churn: snapshot, reload, delta catch-up ------
        // Production processes die mid-churn. Save the deployment at the
        // current generation, "restart" by loading the file (no index
        // build), then publish one more churn delta to BOTH sides: the
        // live deployment and the restarted one. The restarted process
        // must end at the same generation serving the same bytes.
        let snap_path =
            std::env::temp_dir().join(format!("amcad-incremental-{}.snap", std::process::id()));
        let start = Instant::now();
        let saved_generation = handle
            .save_snapshot(&builder, &snap_path)
            .expect("the mid-churn snapshot writes");
        let save_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let (restarted, mut caught_up) =
            EngineHandle::load(&snap_path).expect("the snapshot loads back");
        let load_secs = start.elapsed().as_secs_f64();
        assert_eq!(restarted.generation(), saved_generation);
        // the delta published after the snapshot: re-onboard the retired
        // ads, take down one of the freshly added ones
        let catch_up = IndexDelta {
            added_ads_qa: inputs.ads_qa.filtered(|id| retired.contains(&id)),
            added_ads_ia: inputs.ads_ia.filtered(|id| retired.contains(&id)),
            retired_ads: vec![held_out[0]],
        };
        handle
            .publish_delta(&mut builder, &catch_up)
            .expect("the live side publishes the catch-up delta");
        restarted
            .publish_delta(&mut caught_up, &catch_up)
            .expect("the restarted side replays the catch-up delta");
        assert_eq!(restarted.generation(), handle.generation());
        for request in request_templates.iter() {
            assert_eq!(
                restarted
                    .retrieve(request)
                    .expect("the restarted side serves"),
                handle.retrieve(request).expect("the live side serves"),
                "the restarted deployment diverged from the live one"
            );
        }
        let snap_bytes = std::fs::metadata(&snap_path).map_or(0, |m| m.len());
        let _ = std::fs::remove_file(&snap_path);
        restart_summary = format!(
            "saved generation {saved_generation} ({:.1} KiB) in {:.2} ms, reloaded in {:.2} ms \
             (full rebuild: {:.2} ms), caught up to generation {} — all {} probe requests \
             byte-identical to the never-restarted deployment",
            snap_bytes as f64 / 1024.0,
            save_secs * 1e3,
            load_secs * 1e3,
            full_secs * 1e3,
            handle.generation(),
            request_templates.len(),
        );
        std::thread::sleep(Duration::from_millis(30));
        // advisory stop flag (see the worker loop) — Relaxed
        stop.store(true, Ordering::Relaxed);
    });

    println!("{}", table.render());
    println!(
        "Expected shape: metrics stay in the same band from day to day — warm-started incremental"
    );
    println!("training does not degrade the model (Section V-C reports day-over-day stability).");

    println!("\nIntra-day corpus churn (delta publishes, 2 shards):");
    println!("  {churn_summary}");
    println!("  Delta-built rankings are bit-identical to the full rebuild (property-tested),");
    println!("  and shards the churn does not touch reuse their index storage unchanged.");

    println!("\nWarm restart mid-churn (durable snapshot, 2 shards):");
    println!("  {restart_summary}");
    println!("  A restart costs file I/O instead of the O(keys x ads) neighbour build, and the");
    println!("  restored process catches up through the ordinary delta-publish path.");

    println!("\nZero-downtime serving during the rebuild-and-publish loop");
    println!(
        "(generations 1-3: daily full refreshes; 4: churn-base full publish; 5: delta publish;"
    );
    println!("6: post-snapshot catch-up delta):");
    for (generation, count) in served_per_generation.lock().iter() {
        println!("  generation {generation} served {count} requests");
    }
    // the scope join above already ordered every worker's writes — Relaxed
    let errors = errors.load(Ordering::Relaxed);
    assert_eq!(errors, 0, "a published generation failed a request");
    println!("Every response above is attributable to exactly one snapshot generation; the");
    println!("workers never stopped, saw a torn index, or hit an error ({errors} errors)");
    println!("while days were trained, published, and delta-churned.");
}
