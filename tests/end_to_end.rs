//! Cross-crate integration tests: the full pipeline, learning quality
//! relative to baselines, and consistency between the model export, the MNN
//! indices and the two-layer retriever.

use amcad::core::{
    build_index_inputs, evaluate_offline, EvalConfig, Pipeline, PipelineConfig, RandomScorer,
};
use amcad::datagen::{Dataset, WorldConfig};
use amcad::graph::{NodeId, NodeType};
use amcad::model::{PairScorer, RelationKind, SgnsConfig, SgnsModel, WalkStrategy};
use amcad::retrieval::{
    EngineHandle, IndexDelta, Request, RetrievalEngine, RetrievalError, RetrievalResponse,
    Retrieve, RuntimeConfig, ServingRuntime, ShardedDeltaBuilder, ShardedEngine,
};
use std::sync::Arc;
use std::time::Duration;

fn pipeline_result() -> amcad::core::PipelineResult {
    Pipeline::new(PipelineConfig::small(2024)).run()
}

/// The topology-invariant view of a served result: the physical
/// `served_by` replica route is deployment attribution (single engines
/// report none, sharded engines one entry per shard), so cross-topology
/// parity is asserted over everything else.
fn logical(
    result: Result<RetrievalResponse, RetrievalError>,
) -> Result<RetrievalResponse, RetrievalError> {
    result
        .map(RetrievalResponse::logical)
        .map_err(RetrievalError::logical)
}

#[test]
fn trained_amcad_beats_a_random_scorer_on_next_day_auc() {
    let result = pipeline_result();
    let eval = EvalConfig {
        max_queries: 30,
        auc_negatives: 3,
        seed: 5,
    };
    let random = evaluate_offline(&RandomScorer::new(5), &result.dataset, &eval);
    assert!(
        result.offline.next_auc > random.next_auc + 5.0,
        "trained model AUC {:.2} should clearly beat random {:.2}",
        result.offline.next_auc,
        random.next_auc
    );
}

#[test]
fn export_distances_and_mnn_postings_agree() {
    let result = pipeline_result();
    let export = &result.export;
    let dataset = &result.dataset;
    // For a handful of queries: the Q2A posting list produced by the MNN
    // index must be ordered consistently with the export's own distances.
    let q2a = &result.engine.indexes().q2a;
    let mut checked = 0;
    for &q in dataset.query_nodes.iter().take(10) {
        let Some(postings) = q2a.get(q.0) else {
            continue;
        };
        if postings.len() < 2 {
            continue;
        }
        for w in postings.windows(2) {
            let d0 = export.distance(q, NodeId(w[0].0)).unwrap();
            let d1 = export.distance(q, NodeId(w[1].0)).unwrap();
            assert!(
                d0 <= d1 + 1e-9,
                "posting order must match export distances ({d0} vs {d1})"
            );
            // the stored posting distance is the export distance
            assert!((w[0].1 - d0).abs() < 1e-9);
        }
        checked += 1;
    }
    assert!(checked >= 5, "need enough queries with Q2A postings");
}

#[test]
fn two_layer_retrieval_returns_ads_relevant_to_the_query_category() {
    let result = pipeline_result();
    let dataset = &result.dataset;
    let mut relevant = 0usize;
    let mut total = 0usize;
    for session in dataset.eval_sessions.iter().take(50) {
        let pre: Vec<u32> = dataset
            .preclick_items(session)
            .iter()
            .map(|n| n.0)
            .collect();
        let ads = result
            .engine
            .retrieve(&Request {
                query: session.query.0,
                preclick_items: pre,
            })
            .map(|response| response.ads)
            .unwrap_or_default();
        for ad in ads.iter().take(5) {
            total += 1;
            let ad_node = NodeId(ad.ad);
            assert_eq!(dataset.graph.node_type(ad_node), NodeType::Ad);
            if dataset.graph.category(ad_node) == dataset.graph.category(session.query) {
                relevant += 1;
            }
        }
    }
    assert!(
        total > 0,
        "the retriever should serve ads for next-day sessions"
    );
    // The `small` preset trains for only a few dozen steps (debug-mode test
    // budget), so category selectivity is weak but must not collapse to
    // zero; the release-mode experiment harness uses far larger budgets.
    let frac = relevant as f64 / total as f64;
    assert!(
        frac > 0.05,
        "retrieved ads should show some category affinity, got {frac:.2}"
    );
}

#[test]
fn walk_baselines_and_amcad_are_comparable_through_the_same_protocol() {
    // Both kinds of scorer run through the identical evaluation path — the
    // property the Table VI harness relies on.
    let dataset = Dataset::generate(&WorldConfig::tiny(91));
    let eval = EvalConfig {
        max_queries: 20,
        auc_negatives: 3,
        seed: 91,
    };
    let sgns = SgnsModel::train(
        &dataset.graph,
        &WalkStrategy::default_deepwalk(),
        &SgnsConfig {
            dim: 16,
            epochs: 2,
            ..Default::default()
        },
    );
    let m = evaluate_offline(&sgns, &dataset, &eval);
    assert!(m.next_auc.is_finite());
    assert!(
        m.next_auc > 40.0,
        "DeepWalk should be clearly above chance-floor scores"
    );
    assert_eq!(sgns.scorer_name(), "DeepWalk");
}

#[test]
fn sharded_serving_and_hot_swap_agree_with_the_monolithic_engine_end_to_end() {
    // The serving triad over real pipeline output: a ShardedEngine must
    // reproduce the monolithic engine's responses exactly at every shard
    // count, directly and through an EngineHandle publish cycle.
    let result = pipeline_result();
    let inputs = build_index_inputs(&result.export, &result.dataset);
    let requests: Vec<Request> = result
        .dataset
        .eval_sessions
        .iter()
        .take(40)
        .map(|s| Request {
            query: s.query.0,
            preclick_items: result
                .dataset
                .preclick_items(s)
                .iter()
                .map(|n| n.0)
                .collect(),
        })
        .collect();
    let handle = EngineHandle::new(result.engine.clone());
    for shards in [2usize, 4] {
        let sharded = ShardedEngine::builder()
            .shards(shards)
            .replicas(2)
            .fanout_threads(2)
            .index(*result.engine.index_config())
            .build(&inputs)
            .expect("pipeline inputs build a valid sharded engine");
        let generation = handle.publish(sharded.clone());
        assert_eq!(handle.generation(), generation);
        for request in &requests {
            let single = logical(result.engine.retrieve(request));
            assert_eq!(
                single,
                logical(sharded.retrieve(request)),
                "{shards}-shard parity"
            );
            assert_eq!(
                single,
                logical(handle.retrieve(request)),
                "handle serves the published build"
            );
        }
        // batch path through the trait object, one pinned snapshot: the
        // sharded batch must equal the single-node batch exactly (same
        // rankings, same deduplicated scan attribution)
        let serving: &dyn Retrieve = &handle;
        let sharded_batch: Vec<_> = serving
            .retrieve_batch(&requests)
            .into_iter()
            .map(logical)
            .collect();
        let single_batch: Vec<_> = result
            .engine
            .retrieve_batch(&requests)
            .into_iter()
            .map(logical)
            .collect();
        assert_eq!(sharded_batch, single_batch);
    }
}

#[test]
fn delta_publishes_match_full_rebuilds_over_real_pipeline_output() {
    // The incremental freshness story end to end: a deployment serving
    // real pipeline output absorbs a corpus churn (on-boarded + retired
    // ads) through EngineHandle::publish_delta, and the delta-built
    // generation serves exactly what a from-scratch rebuild of the
    // post-delta corpus serves — sharded or monolithic.
    let result = pipeline_result();
    let inputs = build_index_inputs(&result.export, &result.dataset);
    let index_config = *result.engine.index_config();
    let requests: Vec<Request> = result
        .dataset
        .eval_sessions
        .iter()
        .take(25)
        .map(|s| Request {
            query: s.query.0,
            preclick_items: result
                .dataset
                .preclick_items(s)
                .iter()
                .map(|n| n.0)
                .collect(),
        })
        .collect();
    // generation 1 serves the corpus minus a hold-out; the delta
    // on-boards the hold-out and retires a few live ads
    let ad_ids: Vec<u32> = inputs.ads_qa.ids().to_vec();
    let held_out: Vec<u32> = ad_ids.iter().rev().take(5).copied().collect();
    let retired: Vec<u32> = ad_ids.iter().take(5).copied().collect();
    let mut base = inputs.clone();
    base.ads_qa.retire(|id| held_out.contains(&id));
    base.ads_ia.retire(|id| held_out.contains(&id));
    let delta = IndexDelta {
        added_ads_qa: inputs.ads_qa.filtered(|id| held_out.contains(&id)),
        added_ads_ia: inputs.ads_ia.filtered(|id| held_out.contains(&id)),
        retired_ads: retired.clone(),
    };
    // ground truth: the post-delta corpus rebuilt from scratch
    let mut post = base.clone();
    delta.apply_to(&mut post);
    let fresh_single = RetrievalEngine::builder()
        .index(index_config)
        .build(&post)
        .expect("the post-delta corpus builds a monolithic engine");
    for shards in [2usize, 4] {
        let mut builder = ShardedDeltaBuilder::new(
            &base,
            ShardedEngine::builder().shards(shards).index(index_config),
        )
        .expect("pipeline inputs seed a valid delta builder");
        let handle = EngineHandle::new(builder.engine().expect("generation 1 serves"));
        let generation = handle
            .publish_delta(&mut builder, &delta)
            .expect("the churn delta is valid");
        assert_eq!(
            generation, 2,
            "{shards} shards: delta publish bumps the generation"
        );
        let fresh_sharded = ShardedEngine::builder()
            .shards(shards)
            .index(index_config)
            .build(&post)
            .expect("the post-delta corpus builds a sharded engine");
        for request in &requests {
            let via_delta = logical(handle.retrieve(request));
            assert_eq!(
                via_delta,
                logical(fresh_single.retrieve(request)),
                "{shards} shards: delta generation diverged from the monolithic rebuild"
            );
            assert_eq!(
                via_delta,
                logical(fresh_sharded.retrieve(request)),
                "{shards} shards: delta generation diverged from the sharded rebuild"
            );
        }
    }
}

#[test]
fn replica_failover_preserves_every_ranking_over_real_pipeline_output() {
    // The availability half of the cluster story, end to end: a replicated
    // sharded deployment over real pipeline output keeps serving identical
    // rankings while replicas die one by one, and degrades to the typed
    // ShardUnavailable — never a panic — only when a shard loses its last
    // replica.
    let result = pipeline_result();
    let inputs = build_index_inputs(&result.export, &result.dataset);
    let sharded = ShardedEngine::builder()
        .shards(2)
        .replicas(2)
        .index(*result.engine.index_config())
        .build(&inputs)
        .expect("pipeline inputs build a valid replicated engine");
    let requests: Vec<Request> = result
        .dataset
        .eval_sessions
        .iter()
        .take(20)
        .map(|s| Request {
            query: s.query.0,
            preclick_items: result
                .dataset
                .preclick_items(s)
                .iter()
                .map(|n| n.0)
                .collect(),
        })
        .collect();
    let healthy: Vec<_> = requests
        .iter()
        .map(|r| logical(sharded.retrieve(r)))
        .collect();
    for shard in 0..sharded.active_shards() {
        for replica in 0..sharded.replicas() {
            sharded.fail_replica(shard, replica);
            for (request, expected) in requests.iter().zip(&healthy) {
                let served = sharded.retrieve(request);
                if let Ok(response) = &served {
                    assert_ne!(
                        response.stats.served_by[shard].replica, replica as u32,
                        "traffic must reroute away from the killed replica"
                    );
                }
                assert_eq!(&logical(served), expected, "failover changed a response");
            }
            sharded.restore_replica(shard, replica);
        }
    }
    // shard 0 loses both replicas: typed degradation, then full recovery
    sharded.fail_replica(0, 0);
    sharded.fail_replica(0, 1);
    assert!(matches!(
        sharded.retrieve(&requests[0]),
        Err(RetrievalError::ShardUnavailable {
            shard: 0,
            replicas: 2
        })
    ));
    sharded.restore_replica(0, 0);
    assert_eq!(logical(sharded.retrieve(&requests[0])), healthy[0]);
}

#[test]
fn persistent_pool_fanout_is_byte_identical_to_sequential_across_topologies() {
    // The acceptance-criterion parity property for the serving runtime's
    // persistent pool: across shards 1/2/4 x replicas 1/2, an engine
    // fanning out on resident parked workers serves **byte-identically**
    // to the sequential build — every ranking, every logical stat, every
    // physical route, the batch dedup attribution, and every typed error.
    let result = pipeline_result();
    let inputs = build_index_inputs(&result.export, &result.dataset);
    let index_config = *result.engine.index_config();
    let mut requests: Vec<Request> = result
        .dataset
        .eval_sessions
        .iter()
        .take(16)
        .map(|s| Request {
            query: s.query.0,
            preclick_items: result
                .dataset
                .preclick_items(s)
                .iter()
                .map(|n| n.0)
                .collect(),
        })
        .collect();
    // an unknown query exercises the typed error path through the pool
    requests.push(Request {
        query: u32::MAX,
        preclick_items: vec![],
    });
    for shards in [1usize, 2, 4] {
        for replicas in [1usize, 2] {
            let build = |fanout_threads: usize| {
                ShardedEngine::builder()
                    .shards(shards)
                    .replicas(replicas)
                    .index(index_config)
                    .build_threads(1)
                    .fanout_threads(fanout_threads)
                    .build(&inputs)
                    .expect("pipeline inputs build a valid sharded engine")
            };
            let sequential = build(1);
            let pooled = build(4);
            for request in &requests {
                assert_eq!(
                    sequential.retrieve(request),
                    pooled.retrieve(request),
                    "{shards} shards x {replicas} replicas: pooled fan-out diverged"
                );
            }
            // the batch path with repeats: cross-request dedup gathers on
            // the pool, attribution must still be byte-identical
            let mut batch = requests.clone();
            batch.push(requests[0].clone());
            batch.push(requests[2].clone());
            assert_eq!(
                sequential.retrieve_batch(&batch),
                pooled.retrieve_batch(&batch),
                "{shards} shards x {replicas} replicas: pooled batch diverged"
            );
            // error case: a dead shard types identically through the pool
            sequential.fail_replica(0, 0);
            pooled.fail_replica(0, 0);
            if replicas == 1 {
                for request in &requests {
                    assert_eq!(
                        sequential.retrieve(request),
                        pooled.retrieve(request),
                        "dead-shard errors must match"
                    );
                }
            }
            sequential.restore_replica(0, 0);
            pooled.restore_replica(0, 0);
        }
    }
    // the same engine behind the ServingRuntime: admitted tickets serve
    // the engine's exact responses (single path), and a burst through the
    // batching workers preserves every ranking
    let sequential = ShardedEngine::builder()
        .shards(2)
        .replicas(2)
        .index(index_config)
        .build_threads(1)
        .fanout_threads(1)
        .build(&inputs)
        .expect("pipeline inputs build a valid sharded engine");
    let pooled = Arc::new(
        ShardedEngine::builder()
            .shards(2)
            .replicas(2)
            .index(index_config)
            .build_threads(1)
            .fanout_threads(4)
            .build(&inputs)
            .expect("pipeline inputs build a valid sharded engine"),
    );
    let runtime = ServingRuntime::new(
        pooled,
        RuntimeConfig {
            workers: 1,
            queue_depth: 64,
            deadline: Duration::from_secs(30),
            batch_size: 4,
        },
    )
    .expect("a valid runtime config");
    for request in &requests {
        assert_eq!(
            logical(sequential.retrieve(request)),
            logical(runtime.retrieve_blocking(request)),
            "the runtime must serve the engine's exact logical response"
        );
    }
    let tickets: Vec<_> = requests
        .iter()
        .map(|r| runtime.submit(r.clone()).expect("queue is deep enough"))
        .collect();
    for (request, ticket) in requests.iter().zip(tickets) {
        let expected = sequential.retrieve(request).map(|r| r.ads);
        let got = ticket.wait().map(|r| r.ads);
        assert_eq!(
            logical_ads(expected),
            logical_ads(got),
            "a batched runtime pass changed a ranking"
        );
    }
    let stats = runtime.stats();
    assert_eq!(stats.shed_queue_full + stats.shed_deadline, 0);
    assert_eq!(stats.admitted, stats.completed);
}

/// Rankings only (batch grouping inside the runtime is timing-dependent,
/// so scan-dedup attribution may differ; rankings never may).
fn logical_ads(
    result: Result<Vec<amcad::retrieval::RetrievedAd>, RetrievalError>,
) -> Result<Vec<amcad::retrieval::RetrievedAd>, RetrievalError> {
    result.map_err(RetrievalError::logical)
}

#[test]
fn export_covers_all_five_relation_spaces_for_pipeline_output() {
    let result = pipeline_result();
    for kind in RelationKind::ALL {
        let space = &result.export.spaces[&kind];
        assert!(
            !space.is_empty(),
            "relation space {kind:?} must not be empty"
        );
        // every stored weight vector is a distribution over subspaces
        for w in space.weights.values().take(20) {
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        }
    }
}
