//! Cross-crate property tests: the differentiable manifold operations used
//! during training must agree with the plain reference implementation used
//! during serving, so that offline training and online retrieval measure the
//! same geometry.

use amcad::autodiff::manifold_ops as diff_ops;
use amcad::autodiff::Tape;
use amcad::manifold as reference;
use proptest::prelude::*;

fn kappa_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![(-1.5f64..-0.05), Just(0.0), (0.05f64..1.5)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn training_and_serving_distances_agree(
        u in prop::collection::vec(-0.3f64..0.3, 6),
        v in prop::collection::vec(-0.3f64..0.3, 6),
        kappa in kappa_strategy(),
    ) {
        // serving-side: plain f64 reference
        let x = reference::exp_map_origin(&u, kappa);
        let y = reference::exp_map_origin(&v, kappa);
        let d_ref = reference::distance(&x, &y, kappa);

        // training-side: autodiff composite over the same inputs
        let mut tape = Tape::new();
        let xu = tape.row(u.clone());
        let yv = tape.row(v.clone());
        let k = tape.scalar(kappa);
        let xe = diff_ops::exp0(&mut tape, xu, k);
        let ye = diff_ops::exp0(&mut tape, yv, k);
        let d = diff_ops::distance(&mut tape, xe, ye, k);
        let d_tape = tape.value(d).scalar_value();

        prop_assert!((d_ref - d_tape).abs() < 1e-6,
            "reference {d_ref} vs tape {d_tape} at kappa {kappa}");
    }

    #[test]
    fn weighted_product_distance_matches_manual_combination(
        u in prop::collection::vec(-0.3f64..0.3, 8),
        v in prop::collection::vec(-0.3f64..0.3, 8),
        w0 in 0.05f64..0.95,
        k0 in kappa_strategy(),
        k1 in kappa_strategy(),
    ) {
        use amcad::manifold::{ProductManifold, SubspaceSpec};
        let m = ProductManifold::new(vec![SubspaceSpec::new(4, k0), SubspaceSpec::new(4, k1)]);
        let x = m.exp0(&u);
        let y = m.exp0(&v);
        let weights = [w0, 1.0 - w0];
        let combined = m.weighted_distance(&x, &y, &weights);
        let manual: f64 = m
            .component_distances(&x, &y)
            .iter()
            .zip(&weights)
            .map(|(d, w)| d * w)
            .sum();
        prop_assert!((combined - manual).abs() < 1e-9);
    }

    #[test]
    fn mnn_distance_is_a_valid_dissimilarity(
        u in prop::collection::vec(-0.25f64..0.25, 8),
        v in prop::collection::vec(-0.25f64..0.25, 8),
        wa in 0.05f64..0.95,
        wb in 0.05f64..0.95,
    ) {
        use amcad::manifold::{ProductManifold, SubspaceSpec};
        use amcad::mnn::MixedPointSet;
        let manifold = ProductManifold::new(vec![SubspaceSpec::new(4, -1.0), SubspaceSpec::new(4, 1.0)]);
        let mut set = MixedPointSet::new(manifold.clone());
        set.push(0, &manifold.exp0(&u), &[wa, 1.0 - wa]);
        set.push(1, &manifold.exp0(&v), &[wb, 1.0 - wb]);
        let d01 = set.distance_between(0, &set, 1);
        let d10 = set.distance_between(1, &set, 0);
        prop_assert!(d01 >= -1e-12);
        prop_assert!((d01 - d10).abs() < 1e-9, "symmetry: {d01} vs {d10}");
        prop_assert!(set.distance_between(0, &set, 0).abs() < 1e-9);
    }
}
